// Straggler-policy tests: MinReport/RoundDeadline round cutting at the
// executor layer, the Failed/Stragglers split the engine reports, and the
// partial-record flush when a round dies mid-flight.
package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"fedproxvr/internal/engine"
	"fedproxvr/internal/models"
	"fedproxvr/internal/obs"
)

// TestMinReportSequentialDeterministic: the sequential backend cuts the
// round after exactly minReport devices, in selection order, so the
// participant set is deterministic and the remainder are stragglers.
func TestMinReportSequentialDeterministic(t *testing.T) {
	p := testPartition(4, 20, 3, 3, 6)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.MinReport = 2
	cfg.Rounds = 3

	eng, err := engine.New(cfg, m.Dim(), p.Weights(), engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local))
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	eng.SetStats(obs.NewCollector(obs.NewJSONL(&trace)))
	eng.OnRound(func(info engine.RoundInfo) error {
		if len(info.Participants) != 2 || info.Stragglers != 2 || info.Failed != 0 {
			return fmt.Errorf("round %d: participants %v, stragglers %d, failed %d — want first 2, 2, 0",
				info.Round, info.Participants, info.Stragglers, info.Failed)
		}
		if info.Participants[0] != 0 || info.Participants[1] != 1 {
			return fmt.Errorf("round %d: cut is not in selection order: %v", info.Round, info.Participants)
		}
		return nil
	})
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, rs := range decodeRounds(t, &trace) {
		if rs.Participants != 2 || rs.Stragglers != 2 || rs.Failed != 0 {
			t.Fatalf("record %d: participants/stragglers/failed %d/%d/%d, want 2/2/0",
				i, rs.Participants, rs.Stragglers, rs.Failed)
		}
		if len(rs.Clients) != 2 {
			t.Fatalf("record %d: %d client stats, want 2 (cut devices carry no latency)", i, len(rs.Clients))
		}
	}
}

// TestMinReportParallelQuorum: the parallel backend accepts at least the
// quorum (plus any results that raced the cut) and counts the rest as
// stragglers; every nil slot must be a straggler, never a failure.
func TestMinReportParallelQuorum(t *testing.T) {
	p := testPartition(6, 20, 3, 3, 8)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.MinReport = 2
	cfg.Rounds = 4

	par := engine.NewParallel(newDevices(p, m, cfg.Seed), cfg.Local, 2)
	defer par.Close()
	eng, err := engine.New(cfg, m.Dim(), p.Weights(), par)
	if err != nil {
		t.Fatal(err)
	}
	cutRounds := 0
	eng.OnRound(func(info engine.RoundInfo) error {
		if info.Failed != 0 {
			return fmt.Errorf("round %d: %d failed — quorum cuts must be stragglers", info.Round, info.Failed)
		}
		if got := len(info.Participants); got < cfg.MinReport || got+info.Stragglers != len(p.Clients) {
			return fmt.Errorf("round %d: %d participants + %d stragglers over %d devices",
				info.Round, got, info.Stragglers, len(p.Clients))
		}
		if info.Stragglers > 0 {
			cutRounds++
		}
		return nil
	})
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cutRounds == 0 {
		t.Fatal("no round was quorum-cut — the test is vacuous (pool too fast?)")
	}
}

// TestRoundDeadlineOffIsPlainPath: with the policy unset the engine must
// call the historical RunClients entry point, not the context one — the
// zero-overhead guarantee behind BenchmarkEngineRoundAllocs.
func TestRoundDeadlineOffIsPlainPath(t *testing.T) {
	p := testPartition(2, 10, 3, 3, 9)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = 2
	x := &entryPointSpy{inner: engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local)}
	eng, err := engine.New(cfg, m.Dim(), p.Weights(), x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if x.plain == 0 || x.ctx != 0 {
		t.Fatalf("policy-off run used plain=%d ctx=%d entry points, want plain only", x.plain, x.ctx)
	}
	if eng.Stragglers() != 0 {
		t.Fatalf("policy-off engine reports %d stragglers", eng.Stragglers())
	}
}

type entryPointSpy struct {
	inner      *engine.Sequential
	plain, ctx int
}

func (s *entryPointSpy) RunClients(anchor []float64, selected []int) ([][]float64, error) {
	s.plain++
	return s.inner.RunClients(anchor, selected)
}

func (s *entryPointSpy) RunClientsCtx(ctx context.Context, anchor []float64, selected []int, minReport int) ([][]float64, error) {
	s.ctx++
	return s.inner.RunClientsCtx(ctx, anchor, selected, minReport)
}

func (s *entryPointSpy) Stragglers() int { return s.inner.Stragglers() }

// TestConfigRejectsBadPolicy: negative knobs and the SecureAgg conflict
// (a cut round's absent masks cannot cancel) must fail validation.
func TestConfigRejectsBadPolicy(t *testing.T) {
	base := conformanceConfigs()["full"]
	// Direct Validate calls skip the engine's defaulting pass, so spell the
	// full-participation default out — Validate rejects the zero value.
	base.ClientFraction = 1
	neg := base
	neg.RoundDeadline = -time.Second
	if err := neg.Validate(); err == nil {
		t.Fatal("negative RoundDeadline should fail validation")
	}
	neg = base
	neg.MinReport = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative MinReport should fail validation")
	}
	sec := base
	sec.SecureAgg = true
	sec.MinReport = 2
	if err := sec.Validate(); err == nil {
		t.Fatal("SecureAgg with a quorum cut should fail validation")
	}
	sec.MinReport = 0
	sec.RoundDeadline = time.Second
	if err := sec.Validate(); err == nil {
		t.Fatal("SecureAgg with a round deadline should fail validation")
	}
}

// failingExec errors at a fixed round, mid-fan-out.
type failingExec struct {
	inner engine.Executor
	at    int
	round int
}

func (f *failingExec) RunClients(anchor []float64, selected []int) ([][]float64, error) {
	f.round++
	if f.round == f.at {
		return nil, fmt.Errorf("executor blew up at round %d", f.round)
	}
	return f.inner.RunClients(anchor, selected)
}

// TestRunFlushesPartialStatsOnError: when Step dies mid-round, Run must
// still flush the in-flight partial record, so the trace shows the round
// that died — not just the rounds before it.
func TestRunFlushesPartialStatsOnError(t *testing.T) {
	p := testPartition(3, 15, 3, 3, 10)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = 6
	const dieAt = 3

	eng, err := engine.New(cfg, m.Dim(), p.Weights(),
		&failingExec{inner: engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local), at: dieAt})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	eng.SetStats(obs.NewCollector(obs.NewJSONL(&trace)))
	if _, err := eng.Run(context.Background()); err == nil {
		t.Fatal("the failing executor should abort the run")
	}
	records := decodeRounds(t, &trace)
	if len(records) != dieAt {
		t.Fatalf("trace has %d records, want %d (the dying round included)", len(records), dieAt)
	}
	last := records[dieAt-1]
	if last.Round != dieAt {
		t.Fatalf("last record is round %d, want the aborted round %d", last.Round, dieAt)
	}
	if last.Participants != 0 || len(last.Clients) != 0 {
		t.Fatalf("aborted round record should have no participants: %+v", last)
	}
}

func decodeRounds(t *testing.T, r io.Reader) []obs.RoundStats {
	t.Helper()
	var records []obs.RoundStats
	dec := json.NewDecoder(r)
	for {
		var rs obs.RoundStats
		if err := dec.Decode(&rs); err != nil {
			if errors.Is(err, io.EOF) {
				return records
			}
			t.Fatalf("trace decode: %v", err)
		}
		records = append(records, rs)
	}
}
