package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"fedproxvr/internal/data"
	"fedproxvr/internal/models"
	"fedproxvr/internal/obs"
	"fedproxvr/internal/optim"
	"fedproxvr/internal/randx"
	"fedproxvr/internal/tensor"
)

// Device is one simulated user device: its data shard, its solver (with a
// private clone of the model for goroutine safety), and its private RNG
// stream (which makes parallel and sequential schedules bit-identical).
type Device struct {
	ID     int
	Shard  *data.Dataset
	Solver *optim.Solver
	RNG    *rand.Rand

	local     []float64 // last reported local model w_n^(s)
	gradEvals int64
}

// NewDevice builds a device around a private model clone.
func NewDevice(id int, shard *data.Dataset, m models.Model, seed int64) *Device {
	return &Device{
		ID:     id,
		Shard:  shard,
		Solver: optim.NewSolver(m.Clone()),
		RNG:    randx.NewStream(seed, int64(id)+101),
		local:  make([]float64, m.Dim()),
	}
}

// RunRound executes the device's inner loop from the given anchor and
// returns its reported local model (valid until the next RunRound).
func (d *Device) RunRound(anchor []float64, cfg optim.LocalConfig) []float64 {
	n := d.Solver.Solve(d.Shard, anchor, d.local, cfg, d.RNG)
	d.gradEvals += int64(n)
	return d.local
}

// GradEvals returns the cumulative gradient evaluations of this device.
func (d *Device) GradEvals() int64 { return d.gradEvals }

// Executor runs the selected devices' local solves from the anchor and
// returns their reported models, locals[i] belonging to selected[i]. The
// returned slices are valid until the next RunClients call.
//
// The contract tolerates partial results: locals[i] == nil means device
// selected[i] failed this round (crashed worker, network fault). The
// engine folds failed devices out of the cohort before aggregation,
// exactly as if they had been removed by dropout injection — a per-device
// failure degrades the round, it does not abort the run. A non-nil error
// is reserved for run-fatal conditions (every worker dead, quorum
// exhausted), and does abort.
//
// Implementations are the four backends: Sequential, Parallel
// (in-process; never fail a device), the simulated-clock fleet
// (internal/simnet.TimedExecutor, which forwards its inner executor's
// partial results) and the TCP coordinator (internal/transport.Executor,
// which converts per-worker faults into nil entries).
type Executor interface {
	RunClients(anchor []float64, selected []int) ([][]float64, error)
}

// EvalCounter is implemented by executors that can report the cumulative
// local gradient evaluations across their devices.
type EvalCounter interface {
	GradEvals() int64
}

// Sequential runs the selected devices one after another on the calling
// goroutine.
type Sequential struct {
	devices []*Device
	local   optim.LocalConfig
	buf     [][]float64
	statsOn bool
	lat     []obs.ClientStat
}

// NewSequential builds the sequential in-process executor.
func NewSequential(devices []*Device, local optim.LocalConfig) *Sequential {
	return &Sequential{devices: devices, local: local}
}

// RunClients implements Executor.
func (s *Sequential) RunClients(anchor []float64, selected []int) ([][]float64, error) {
	out := growLocals(&s.buf, len(selected))
	if s.statsOn {
		s.lat = growStats(s.lat, len(selected))
		for i, id := range selected {
			t0 := time.Now()
			out[i] = s.devices[id].RunRound(anchor, s.local)
			d := time.Since(t0).Seconds()
			s.lat[i] = obs.ClientStat{ID: id, Seconds: d, SolveSeconds: d}
		}
		return out, nil
	}
	for i, id := range selected {
		out[i] = s.devices[id].RunRound(anchor, s.local)
	}
	return out, nil
}

// EnableStats implements StatsSource.
func (s *Sequential) EnableStats(on bool) { s.statsOn = on }

// CollectStats implements StatsSource: per-client solve latencies of the
// last round.
func (s *Sequential) CollectStats(rs *obs.RoundStats) {
	rs.Clients = append(rs.Clients, s.lat...)
}

// GradEvals implements EvalCounter.
func (s *Sequential) GradEvals() int64 { return sumEvals(s.devices) }

// Devices exposes the executor's devices (read-only use).
func (s *Sequential) Devices() []*Device { return s.devices }

// parJob is one device solve handed to the worker pool. It carries every
// pointer a worker needs so the workers never reference the Parallel struct
// itself (which lets a forgotten pool be finalized and its goroutines
// reaped).
type parJob struct {
	i      int
	dev    *Device
	anchor []float64
	out    [][]float64
	local  optim.LocalConfig
	wg     *sync.WaitGroup
	lat    []obs.ClientStat // nil when stats are off
}

// Parallel fans each round's devices out to a persistent pool of worker
// goroutines. Unlike a per-round goroutine fan-out it allocates nothing per
// round beyond one WaitGroup: the locals buffer and the job channel are
// reused for the lifetime of the executor (see BenchmarkEngineRoundAllocs).
type Parallel struct {
	devices []*Device
	local   optim.LocalConfig
	jobs    chan parJob
	buf     [][]float64
	once    sync.Once
	statsOn bool
	lat     []obs.ClientStat
}

// NewParallel builds the pooled parallel executor. workers ≤ 0 selects the
// tensor worker budget (GOMAXPROCS-derived).
func NewParallel(devices []*Device, local optim.LocalConfig, workers int) *Parallel {
	if workers < 1 {
		workers = maxParallel()
	}
	p := &Parallel{devices: devices, local: local, jobs: make(chan parJob)}
	for k := 0; k < workers; k++ {
		go parWorker(p.jobs)
	}
	// Safety net: reap the pool goroutines when an un-Closed executor
	// becomes unreachable (runs created via the facade are not obliged to
	// call Close).
	runtime.SetFinalizer(p, (*Parallel).Close)
	return p
}

func parWorker(jobs <-chan parJob) {
	for j := range jobs {
		if j.lat != nil {
			t0 := time.Now()
			j.out[j.i] = j.dev.RunRound(j.anchor, j.local)
			d := time.Since(t0).Seconds()
			j.lat[j.i] = obs.ClientStat{ID: j.dev.ID, Seconds: d, SolveSeconds: d}
		} else {
			j.out[j.i] = j.dev.RunRound(j.anchor, j.local)
		}
		j.wg.Done()
	}
}

// RunClients implements Executor. Results are bit-identical to Sequential
// because every device owns a private RNG stream.
func (p *Parallel) RunClients(anchor []float64, selected []int) ([][]float64, error) {
	out := growLocals(&p.buf, len(selected))
	var lat []obs.ClientStat
	if p.statsOn {
		p.lat = growStats(p.lat, len(selected))
		lat = p.lat
	}
	var wg sync.WaitGroup
	wg.Add(len(selected))
	for i, id := range selected {
		p.jobs <- parJob{i: i, dev: p.devices[id], anchor: anchor, out: out, local: p.local, wg: &wg, lat: lat}
	}
	wg.Wait()
	return out, nil
}

// EnableStats implements StatsSource.
func (p *Parallel) EnableStats(on bool) { p.statsOn = on }

// CollectStats implements StatsSource: per-client solve latencies of the
// last round (written by the pool workers; wg.Wait in RunClients is the
// synchronization point).
func (p *Parallel) CollectStats(rs *obs.RoundStats) {
	rs.Clients = append(rs.Clients, p.lat...)
}

// GradEvals implements EvalCounter.
func (p *Parallel) GradEvals() int64 { return sumEvals(p.devices) }

// Devices exposes the executor's devices (read-only use).
func (p *Parallel) Devices() []*Device { return p.devices }

// Close stops the worker pool. Idempotent; the pool is also closed by a
// finalizer if the executor is dropped without Close.
func (p *Parallel) Close() {
	p.once.Do(func() {
		runtime.SetFinalizer(p, nil)
		close(p.jobs)
	})
}

// growLocals resizes *buf to n entries without reallocating when capacity
// allows, returning the usable prefix.
func growLocals(buf *[][]float64, n int) [][]float64 {
	if cap(*buf) < n {
		*buf = make([][]float64, n)
	}
	return (*buf)[:n]
}

// growStats resizes buf to n entries without reallocating when capacity
// allows.
func growStats(buf []obs.ClientStat, n int) []obs.ClientStat {
	if cap(buf) < n {
		return make([]obs.ClientStat, n)
	}
	return buf[:n]
}

func sumEvals(devices []*Device) int64 {
	var total int64
	for _, d := range devices {
		total += d.GradEvals()
	}
	return total
}

func maxParallel() int {
	n := tensor.MaxWorkers()
	if n < 1 {
		return 1
	}
	return n
}
