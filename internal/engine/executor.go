package engine

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fedproxvr/internal/data"
	"fedproxvr/internal/models"
	"fedproxvr/internal/obs"
	"fedproxvr/internal/optim"
	"fedproxvr/internal/randx"
	"fedproxvr/internal/tensor"
	"fedproxvr/internal/trace"
)

// Device is one simulated user device: its data shard, its solver (with a
// private clone of the model for goroutine safety), and its private RNG
// stream (which makes parallel and sequential schedules bit-identical).
type Device struct {
	ID     int
	Shard  *data.Dataset
	Solver *optim.Solver
	RNG    *rand.Rand

	seed  int64     // experiment seed BeginRound re-keys the stream from
	local []float64 // last reported local model w_n^(s)
	// gradEvals is atomic because a quorum-cut round's solve can still be
	// finishing on a pool worker while the engine reads the counter.
	gradEvals atomic.Int64
	busy      atomic.Bool // still solving a round that was cut (Parallel only)
}

// NewDevice builds a device around a private model clone.
func NewDevice(id int, shard *data.Dataset, m models.Model, seed int64) *Device {
	return &Device{
		ID:     id,
		Shard:  shard,
		Solver: optim.NewSolver(m.Clone()),
		RNG:    randx.NewSeedable(randx.DeriveSeed(seed, int64(id)+101)),
		seed:   seed,
		local:  make([]float64, m.Dim()),
	}
}

// BeginRound re-keys the device's private RNG for global round t. The new
// state is a pure function of (seed, id, round) — no history — so round
// t's minibatch draws are identical whether the earlier rounds ran in this
// process, on a TCP worker, or in a coordinator incarnation that has since
// been SIGKILLed and restarted. This is what upgrades checkpoint resume
// and worker rejoin from "statistically equivalent" to bit-identical.
// Round 0 (no engine-numbered round) leaves the construction-time stream
// untouched for callers that never number rounds (internal/async).
func (d *Device) BeginRound(t int) {
	if t > 0 {
		d.RNG.Seed(randx.RoundSeed(d.seed, int64(d.ID)+101, int64(t)))
	}
}

// RunRound executes the device's inner loop from the given anchor and
// returns its reported local model (valid until the next RunRound).
func (d *Device) RunRound(anchor []float64, cfg optim.LocalConfig) []float64 {
	n := d.Solver.Solve(d.Shard, anchor, d.local, cfg, d.RNG)
	d.gradEvals.Add(int64(n))
	return d.local
}

// GradEvals returns the cumulative gradient evaluations of this device.
func (d *Device) GradEvals() int64 { return d.gradEvals.Load() }

// Executor runs the selected devices' local solves from the anchor and
// returns their reported models, locals[i] belonging to selected[i]. The
// returned slices are valid until the next RunClients call.
//
// The contract tolerates partial results: locals[i] == nil means device
// selected[i] failed this round (crashed worker, network fault). The
// engine folds failed devices out of the cohort before aggregation,
// exactly as if they had been removed by dropout injection — a per-device
// failure degrades the round, it does not abort the run. A non-nil error
// is reserved for run-fatal conditions (every worker dead, quorum
// exhausted), and does abort.
//
// Implementations are the four backends: Sequential, Parallel
// (in-process; never fail a device), the simulated-clock fleet
// (internal/simnet.TimedExecutor, which forwards its inner executor's
// partial results) and the TCP coordinator (internal/transport.Executor,
// which converts per-worker faults into nil entries).
type Executor interface {
	RunClients(anchor []float64, selected []int) ([][]float64, error)
}

// ContextExecutor is implemented by executors that support the engine's
// straggler policy (Config.RoundDeadline / Config.MinReport): the round
// is cut when ctx expires or — with minReport > 0 — as soon as minReport
// devices have reported. Devices cut out of the round come back as nil
// partial results, exactly like failures, but the executor counts them
// separately (see StragglerCounter). minReport ≤ 0 means no quorum cut.
type ContextExecutor interface {
	Executor
	RunClientsCtx(ctx context.Context, anchor []float64, selected []int, minReport int) ([][]float64, error)
}

// StragglerCounter reports how many of the last round's nil results were
// deadline/quorum cuts rather than failures. Implemented alongside
// ContextExecutor; the engine subtracts the count from Failed so
// obs.RoundStats tells a cut device apart from a crashed one.
type StragglerCounter interface {
	Stragglers() int
}

// RunClientsWithPolicy dispatches to RunClientsCtx when the executor
// supports the straggler policy and falls back to the plain contract
// otherwise — the compatibility shim that lets pre-policy backends keep
// working (they simply never cut a round).
func RunClientsWithPolicy(x Executor, ctx context.Context, anchor []float64, selected []int, minReport int) ([][]float64, error) {
	if cx, ok := x.(ContextExecutor); ok {
		return cx.RunClientsCtx(ctx, anchor, selected, minReport)
	}
	return x.RunClients(anchor, selected)
}

// EvalCounter is implemented by executors that can report the cumulative
// local gradient evaluations across their devices.
type EvalCounter interface {
	GradEvals() int64
}

// RoundBeginner is implemented by executors that align their internal
// round numbering — and their devices' per-round RNG re-key (see
// Device.BeginRound) — with the engine's counter. The engine calls it at
// the top of every Step, before selection, so a resumed engine
// (SetRound after checkpoint restore) drives the executor at the true
// global round number instead of a private count restarted at 1.
// Decorators (chaos, simnet, transport) forward the call inward.
type RoundBeginner interface {
	BeginRound(t int)
}

// Sequential runs the selected devices one after another on the calling
// goroutine.
type Sequential struct {
	devices    []*Device
	local      optim.LocalConfig
	buf        [][]float64
	statsOn    bool
	lat        []obs.ClientStat
	stragglers int
	round      int // engine round (see BeginRound); 0 for unnumbered callers
	tr         *trace.Tracer
}

// NewSequential builds the sequential in-process executor.
func NewSequential(devices []*Device, local optim.LocalConfig) *Sequential {
	return &Sequential{devices: devices, local: local}
}

// BeginRound implements RoundBeginner.
func (s *Sequential) BeginRound(t int) { s.round = t }

// RunClients implements Executor.
func (s *Sequential) RunClients(anchor []float64, selected []int) ([][]float64, error) {
	out := growLocals(&s.buf, len(selected))
	s.stragglers = 0
	if s.statsOn {
		s.lat = growStats(s.lat, len(selected))
		for i, id := range selected {
			sp := s.tr.StartClient(id)
			t0 := time.Now()
			dev := s.devices[id]
			dev.BeginRound(s.round)
			out[i] = dev.RunRound(anchor, s.local)
			d := time.Since(t0).Seconds()
			sp.End()
			s.lat[i] = obs.ClientStat{ID: id, Seconds: d, SolveSeconds: d}
		}
		return out, nil
	}
	for i, id := range selected {
		sp := s.tr.StartClient(id)
		dev := s.devices[id]
		dev.BeginRound(s.round)
		out[i] = dev.RunRound(anchor, s.local)
		sp.End()
	}
	return out, nil
}

// RunClientsCtx implements ContextExecutor. The sequential schedule
// cannot preempt a running solve, so the deadline is checked between
// devices: once ctx expires (or minReport devices have reported) the
// remaining devices are cut without running — their RNG streams stay
// untouched, which keeps a cut sequential round bit-identical to the
// same cut on Parallel when the schedule decides the cut set (see the
// chaos conformance tests).
func (s *Sequential) RunClientsCtx(ctx context.Context, anchor []float64, selected []int, minReport int) ([][]float64, error) {
	out := growLocals(&s.buf, len(selected))
	if s.statsOn {
		s.lat = growStats(s.lat, len(selected))
	}
	s.stragglers = 0
	reported := 0
	for i, id := range selected {
		if ctx.Err() != nil || (minReport > 0 && reported >= minReport) {
			out[i] = nil
			if s.statsOn {
				s.lat[i] = obs.ClientStat{ID: -1}
			}
			s.stragglers++
			continue
		}
		sp := s.tr.StartClient(id)
		dev := s.devices[id]
		dev.BeginRound(s.round)
		if s.statsOn {
			t0 := time.Now()
			out[i] = dev.RunRound(anchor, s.local)
			d := time.Since(t0).Seconds()
			s.lat[i] = obs.ClientStat{ID: id, Seconds: d, SolveSeconds: d}
		} else {
			out[i] = dev.RunRound(anchor, s.local)
		}
		sp.End()
		reported++
	}
	return out, nil
}

// Stragglers implements StragglerCounter.
func (s *Sequential) Stragglers() int { return s.stragglers }

// EnableStats implements StatsSource.
func (s *Sequential) EnableStats(on bool) { s.statsOn = on }

// SetTracer implements TraceSource: per-client solve spans.
func (s *Sequential) SetTracer(tr *trace.Tracer) { s.tr = tr }

// CollectStats implements StatsSource: per-client solve latencies of the
// last round (cut devices carry ID -1 and are skipped).
func (s *Sequential) CollectStats(rs *obs.RoundStats) {
	for _, st := range s.lat {
		if st.ID >= 0 {
			rs.Clients = append(rs.Clients, st)
		}
	}
}

// GradEvals implements EvalCounter.
func (s *Sequential) GradEvals() int64 { return sumEvals(s.devices) }

// Devices exposes the executor's devices (read-only use).
func (s *Sequential) Devices() []*Device { return s.devices }

// parJob is one device solve handed to the worker pool. It carries every
// pointer a worker needs so the workers never reference the Parallel struct
// itself (which lets a forgotten pool be finalized and its goroutines
// reaped).
type parJob struct {
	i      int
	dev    *Device
	anchor []float64
	out    [][]float64
	local  optim.LocalConfig
	wg     *sync.WaitGroup
	lat    []obs.ClientStat // nil when stats are off
	tr     *trace.Tracer    // nil when tracing is off

	// res switches the job to the policy path (RunClientsCtx): the worker
	// sends its result on res instead of writing out/lat and signaling wg,
	// so a cut round can stop collecting while late solves finish in the
	// background. stats mirrors lat != nil for this path.
	res   chan parResult
	stats bool
}

// parResult is one finished solve on the policy path.
type parResult struct {
	i     int
	id    int
	vec   []float64
	solve float64
}

// Parallel fans each round's devices out to a persistent pool of worker
// goroutines. Unlike a per-round goroutine fan-out it allocates nothing per
// round beyond one WaitGroup: the locals buffer and the job channel are
// reused for the lifetime of the executor (see BenchmarkEngineRoundAllocs).
type Parallel struct {
	devices    []*Device
	local      optim.LocalConfig
	jobs       chan parJob
	buf        [][]float64
	once       sync.Once
	statsOn    bool
	lat        []obs.ClientStat
	stragglers int
	round      int // engine round (see BeginRound); 0 for unnumbered callers
	tr         *trace.Tracer
}

// NewParallel builds the pooled parallel executor. workers ≤ 0 selects the
// tensor worker budget (GOMAXPROCS-derived).
func NewParallel(devices []*Device, local optim.LocalConfig, workers int) *Parallel {
	if workers < 1 {
		workers = maxParallel()
	}
	p := &Parallel{devices: devices, local: local, jobs: make(chan parJob)}
	for k := 0; k < workers; k++ {
		go parWorker(p.jobs)
	}
	// Safety net: reap the pool goroutines when an un-Closed executor
	// becomes unreachable (runs created via the facade are not obliged to
	// call Close).
	runtime.SetFinalizer(p, (*Parallel).Close)
	return p
}

func parWorker(jobs <-chan parJob) {
	for j := range jobs {
		if j.res != nil {
			// Policy path: deliver on the round's buffered channel. busy is
			// released before the send so a device whose result loses the
			// race against a cut is immediately schedulable next round.
			sp := j.tr.StartClient(j.dev.ID)
			var t0 time.Time
			if j.stats {
				t0 = time.Now()
			}
			vec := j.dev.RunRound(j.anchor, j.local)
			var d float64
			if j.stats {
				d = time.Since(t0).Seconds()
			}
			sp.End()
			j.dev.busy.Store(false)
			j.res <- parResult{i: j.i, id: j.dev.ID, vec: vec, solve: d}
			continue
		}
		sp := j.tr.StartClient(j.dev.ID)
		if j.lat != nil {
			t0 := time.Now()
			j.out[j.i] = j.dev.RunRound(j.anchor, j.local)
			d := time.Since(t0).Seconds()
			j.lat[j.i] = obs.ClientStat{ID: j.dev.ID, Seconds: d, SolveSeconds: d}
		} else {
			j.out[j.i] = j.dev.RunRound(j.anchor, j.local)
		}
		sp.End()
		j.wg.Done()
	}
}

// BeginRound implements RoundBeginner.
func (p *Parallel) BeginRound(t int) { p.round = t }

// RunClients implements Executor. Results are bit-identical to Sequential
// because every device owns a private RNG stream. Devices are re-keyed for
// the round here, on the dispatching goroutine — the job-channel send
// publishes the new RNG state to the pool worker.
func (p *Parallel) RunClients(anchor []float64, selected []int) ([][]float64, error) {
	out := growLocals(&p.buf, len(selected))
	var lat []obs.ClientStat
	if p.statsOn {
		p.lat = growStats(p.lat, len(selected))
		lat = p.lat
	}
	var wg sync.WaitGroup
	wg.Add(len(selected))
	for i, id := range selected {
		dev := p.devices[id]
		dev.BeginRound(p.round)
		p.jobs <- parJob{i: i, dev: dev, anchor: anchor, out: out, local: p.local, wg: &wg, lat: lat, tr: p.tr}
	}
	wg.Wait()
	p.stragglers = 0
	return out, nil
}

// RunClientsCtx implements ContextExecutor. Results flow through a
// per-round buffered channel instead of the shared out buffer, so the
// collector can stop at the deadline or quorum while late solves finish
// harmlessly in the background: a late worker's send lands in the
// abandoned round's channel and is dropped with it. A device still
// solving a previously-cut round (busy) is skipped — and counted as a
// straggler — rather than raced on its reusable local buffer.
func (p *Parallel) RunClientsCtx(ctx context.Context, anchor []float64, selected []int, minReport int) ([][]float64, error) {
	// Abandoned solves outlive the round, so the anchor they read must not
	// alias the engine's global vector, which the next aggregation mutates.
	// The snapshot is a fresh slice, not a reused buffer, because a cut
	// round's workers may still be reading the previous round's snapshot.
	anchor = append([]float64(nil), anchor...)
	out := growLocals(&p.buf, len(selected))
	for i := range out {
		out[i] = nil
	}
	if p.statsOn {
		p.lat = growStats(p.lat, len(selected))
		for i := range p.lat {
			p.lat[i] = obs.ClientStat{ID: -1}
		}
	}
	res := make(chan parResult, len(selected))
	submitted := 0
submit:
	for i, id := range selected {
		dev := p.devices[id]
		if !dev.busy.CompareAndSwap(false, true) {
			continue // still finishing a cut round's solve
		}
		// Re-key only after winning the CAS: a device still solving a cut
		// round must not have its stream reset underneath the late solve.
		dev.BeginRound(p.round)
		j := parJob{i: i, dev: dev, anchor: anchor, local: p.local, res: res, stats: p.statsOn, tr: p.tr}
		select {
		case p.jobs <- j:
			submitted++
		case <-ctx.Done():
			// Every pool worker is occupied past the deadline; don't queue
			// more work into a round that is already over.
			dev.busy.Store(false)
			break submit
		}
	}
	accept := func(r parResult) {
		out[r.i] = r.vec
		if p.statsOn {
			p.lat[r.i] = obs.ClientStat{ID: r.id, Seconds: r.solve, SolveSeconds: r.solve}
		}
	}
	target := submitted
	if minReport > 0 && minReport < target {
		target = minReport
	}
	got := 0
collect:
	for got < target {
		select {
		case r := <-res:
			accept(r)
			got++
		case <-ctx.Done():
			break collect
		}
	}
	// Results that raced the cut and already arrived are real — keep them.
	for {
		select {
		case r := <-res:
			accept(r)
			got++
		default:
			p.stragglers = len(selected) - got
			return out, nil
		}
	}
}

// Stragglers implements StragglerCounter.
func (p *Parallel) Stragglers() int { return p.stragglers }

// EnableStats implements StatsSource.
func (p *Parallel) EnableStats(on bool) { p.statsOn = on }

// SetTracer implements TraceSource: the pool workers open per-client solve
// spans (the tracer is goroutine-safe).
func (p *Parallel) SetTracer(tr *trace.Tracer) { p.tr = tr }

// CollectStats implements StatsSource: per-client solve latencies of the
// last round (written by the pool workers; wg.Wait in RunClients is the
// synchronization point, the result channel on the policy path). Cut
// devices carry ID -1 and are skipped.
func (p *Parallel) CollectStats(rs *obs.RoundStats) {
	for _, st := range p.lat {
		if st.ID >= 0 {
			rs.Clients = append(rs.Clients, st)
		}
	}
}

// GradEvals implements EvalCounter.
func (p *Parallel) GradEvals() int64 { return sumEvals(p.devices) }

// Devices exposes the executor's devices (read-only use).
func (p *Parallel) Devices() []*Device { return p.devices }

// Close stops the worker pool. Idempotent; the pool is also closed by a
// finalizer if the executor is dropped without Close.
func (p *Parallel) Close() {
	p.once.Do(func() {
		runtime.SetFinalizer(p, nil)
		close(p.jobs)
	})
}

// growLocals resizes *buf to n entries without reallocating when capacity
// allows, returning the usable prefix.
func growLocals(buf *[][]float64, n int) [][]float64 {
	if cap(*buf) < n {
		*buf = make([][]float64, n)
	}
	return (*buf)[:n]
}

// growStats resizes buf to n entries without reallocating when capacity
// allows.
func growStats(buf []obs.ClientStat, n int) []obs.ClientStat {
	if cap(buf) < n {
		return make([]obs.ClientStat, n)
	}
	return buf[:n]
}

func sumEvals(devices []*Device) int64 {
	var total int64
	for _, d := range devices {
		total += d.GradEvals()
	}
	return total
}

func maxParallel() int {
	n := tensor.MaxWorkers()
	if n < 1 {
		return 1
	}
	return n
}
