package engine

import (
	"fmt"
	"math/rand"

	"fedproxvr/internal/mathx"
	"fedproxvr/internal/randx"
	"fedproxvr/internal/secure"
)

// Aggregator folds one round's local models into the global model in
// place: w̄ ← combine(locals). locals[i] is the model reported by device
// selected[i]; implementations may reuse locals as scratch (the buffers
// belong to the round and are dead after aggregation).
type Aggregator interface {
	Aggregate(w []float64, selected []int, locals [][]float64) error
}

// WeightedMean is line 12 of Algorithm 1 over the participating cohort:
// w̄ = Σ (D_n / Σ_selected D_n) · w_n.
type WeightedMean struct {
	weights []float64
	scratch []float64
}

// NewWeightedMean builds the data-size-weighted aggregator.
func NewWeightedMean(weights []float64, dim int) *WeightedMean {
	return &WeightedMean{weights: weights, scratch: make([]float64, dim)}
}

// Aggregate implements Aggregator.
func (a *WeightedMean) Aggregate(w []float64, selected []int, locals [][]float64) error {
	wsum := selectedWeight(a.weights, selected)
	if wsum == 0 {
		return fmt.Errorf("engine: selected cohort has zero total weight")
	}
	mathx.Zero(a.scratch)
	for i, id := range selected {
		mathx.Axpy(a.weights[id]/wsum, locals[i], a.scratch)
	}
	copy(w, a.scratch)
	return nil
}

// DPMean is the DP-FedAvg mechanism: every device's round update
// Δ_n = w_n − w̄ is clipped to at most Clip in L2 norm, the clipped deltas
// are aggregated by data-size weights, and iid N(0, (Noise·Clip)²) noise is
// added to the aggregate. It consumes the locals as delta scratch.
type DPMean struct {
	weights []float64
	clip    float64
	noise   float64
	rng     *rand.Rand // shared server stream: noise draws stay in seed order
	scratch []float64
}

// NewDPMean builds the clipping+noise aggregator. rng must be the engine's
// server stream so noise draws interleave deterministically with selection
// and dropout draws.
func NewDPMean(weights []float64, dim int, clip, noise float64, rng *rand.Rand) *DPMean {
	return &DPMean{weights: weights, clip: clip, noise: noise, rng: rng, scratch: make([]float64, dim)}
}

// Aggregate implements Aggregator.
func (a *DPMean) Aggregate(w []float64, selected []int, locals [][]float64) error {
	wsum := selectedWeight(a.weights, selected)
	if wsum == 0 {
		return fmt.Errorf("engine: selected cohort has zero total weight")
	}
	mathx.Zero(a.scratch)
	for i, id := range selected {
		delta := locals[i] // reuse the device buffer as Δ_n
		mathx.Sub(delta, delta, w)
		if n := mathx.Nrm2(delta); n > a.clip {
			mathx.Scal(a.clip/n, delta)
		}
		mathx.Axpy(a.weights[id]/wsum, delta, a.scratch)
	}
	if a.noise > 0 {
		std := a.noise * a.clip
		for i := range a.scratch {
			a.scratch[i] += std * a.rng.NormFloat64()
		}
	}
	mathx.Axpy(1, a.scratch, w)
	return nil
}

// SecureMean aggregates through internal/secure's pairwise additive
// masking: every device pre-scales its model by its data share, adds its
// pairwise masks, and the server sums the masked submissions — the masks
// cancel, so the server recovers the weighted mean without ever observing
// an individual model in the clear. Requires all devices every round (the
// simplified protocol has no dropout recovery).
type SecureMean struct {
	weights []float64
	maskers []*secure.Masker
	masked  [][]float64
}

// NewSecureMean builds one masker per device from a group seed derived
// from the experiment seed (standing in for pairwise key agreement).
// maskScale 0 selects the secure package default.
func NewSecureMean(weights []float64, dim int, seed int64, maskScale float64) *SecureMean {
	n := len(weights)
	group := randx.DeriveSeed(seed, 33)
	a := &SecureMean{
		weights: weights,
		maskers: make([]*secure.Masker, n),
		masked:  make([][]float64, n),
	}
	for id := 0; id < n; id++ {
		a.maskers[id] = &secure.Masker{ID: id, N: n, Dim: dim, GroupSeed: group, MaskScale: maskScale}
		a.masked[id] = make([]float64, dim)
	}
	return a
}

// Aggregate implements Aggregator.
func (a *SecureMean) Aggregate(w []float64, selected []int, locals [][]float64) error {
	if len(selected) != len(a.maskers) {
		return fmt.Errorf("engine: secure aggregation needs all %d clients, got %d (absent clients' masks cannot cancel)",
			len(a.maskers), len(selected))
	}
	total := selectedWeight(a.weights, selected)
	for i, id := range selected {
		if err := a.maskers[id].Mask(a.masked[id], locals[i], a.weights[id]); err != nil {
			return err
		}
	}
	sum, err := secure.Aggregate(a.masked, total)
	if err != nil {
		return err
	}
	copy(w, sum)
	return nil
}

// PartialMean folds pre-weighted partial sums from aggregation-tree shards:
// locals[i] is Σ D_n·w_n over child selected[i]'s reporting devices and
// weight(selected[i]) is that shard's Σ D_n for the round. The root divides
// once by the grand total, so the arithmetic is exactly the canonical
// sharded fold of ShardedMean — which is what makes a tree run bit-identical
// to a flat run using ShardedMean over the same shard map. Children with
// zero round weight (every device in the shard dropped or sat out) are
// skipped entirely, matching a flat fold in which their devices simply do
// not appear; if every child reports zero weight the global model is left
// unchanged, the same no-op as a flat all-dropped round.
type PartialMean struct {
	weight func(child int) float64
	acc    []float64
}

// NewPartialMean builds the root-of-tree aggregator. weight reports a
// child's current-round Σ D_n (the transport executor exposes this from the
// PartialSum frames it collected).
func NewPartialMean(dim int, weight func(child int) float64) *PartialMean {
	return &PartialMean{weight: weight, acc: make([]float64, dim)}
}

// Aggregate implements Aggregator.
func (a *PartialMean) Aggregate(w []float64, selected []int, locals [][]float64) error {
	mathx.Zero(a.acc)
	var total float64
	for i, child := range selected {
		ws := a.weight(child)
		if ws == 0 {
			continue
		}
		mathx.Axpy(1, locals[i], a.acc)
		total += ws
	}
	if total == 0 {
		return nil
	}
	mathx.Scal(1/total, a.acc)
	copy(w, a.acc)
	return nil
}

// ShardedMean is the flat-engine reference for tree aggregation: devices
// are grouped into contiguous shards (shard s covers IDs [ends[s-1],
// ends[s])), each shard accumulates Σ D_n·w_n over its reporting devices
// with RAW sample counts — integer-valued float64s, so the per-shard sums
// are exact and order-independent below 2^53 — and the shard partials are
// folded in ascending shard order before a single normalization by the
// grand total Σ D_n. This is float-for-float the operation sequence the
// aggregation tree performs (AggregatorNode per shard, PartialMean at the
// root), so for the same seed the two are bit-identical by construction.
// selected must be ascending (true for full participation and for
// probabilistic activation, the tree's two selection modes).
type ShardedMean struct {
	counts  []float64 // per-device D_n, raw sample counts
	ends    []int     // cumulative shard end IDs, ascending; last == len(counts)
	acc     []float64
	partial []float64
}

// NewShardedMean builds the sharded reference aggregator. counts are raw
// per-device sample counts (not normalized shares); ends are the cumulative
// shard boundaries.
func NewShardedMean(counts []float64, ends []int, dim int) *ShardedMean {
	return &ShardedMean{
		counts:  counts,
		ends:    ends,
		acc:     make([]float64, dim),
		partial: make([]float64, dim),
	}
}

// Aggregate implements Aggregator.
func (a *ShardedMean) Aggregate(w []float64, selected []int, locals [][]float64) error {
	mathx.Zero(a.acc)
	var total float64
	i := 0
	for _, end := range a.ends {
		mathx.Zero(a.partial)
		var ws float64
		n := 0
		for i < len(selected) && selected[i] < end {
			id := selected[i]
			mathx.Axpy(a.counts[id], locals[i], a.partial)
			ws += a.counts[id]
			n++
			i++
		}
		if n == 0 {
			continue
		}
		mathx.Axpy(1, a.partial, a.acc)
		total += ws
	}
	if i != len(selected) {
		return fmt.Errorf("engine: ShardedMean needs ascending selected IDs within the shard map (got id %d past end %d)",
			selected[i], a.ends[len(a.ends)-1])
	}
	if total == 0 {
		return nil
	}
	mathx.Scal(1/total, a.acc)
	copy(w, a.acc)
	return nil
}

func selectedWeight(weights []float64, selected []int) float64 {
	var s float64
	for _, id := range selected {
		s += weights[id]
	}
	return s
}
