// Regression tests for the config-validation sweep (explicit
// ClientFraction 0, ActivateProb bounds) and for all-dropped rounds: a
// round in which no device reports must leave the global model bitwise
// unchanged on every backend, fire hooks with an empty cohort, and never
// reach the aggregator with an empty fold.
package engine_test

import (
	"context"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedproxvr/internal/engine"
	"fedproxvr/internal/mathx"
	"fedproxvr/internal/models"
	"fedproxvr/internal/randx"
	"fedproxvr/internal/simnet"
	"fedproxvr/internal/transport"
)

// TestValidateRejectsExplicitClientFractionZero: the historical Validate
// accepted ClientFraction 0 — which SelectClients then treated as "sample
// one device" only because of its k<1 clamp, silently contradicting the
// zero-value default of full participation. An explicit 0 must now fail
// with an actionable message, while the unset zero value keeps defaulting
// to full participation through the engine constructor.
func TestValidateRejectsExplicitClientFractionZero(t *testing.T) {
	cfg := conformanceConfigs()["full"] // ClientFraction left at zero value
	err := cfg.Validate()
	if err == nil {
		t.Fatal("explicit ClientFraction 0 should fail validation")
	}
	if !strings.Contains(err.Error(), "ClientFraction") || !strings.Contains(err.Error(), "unset") {
		t.Fatalf("error should name the field and the unset-default remedy, got: %v", err)
	}

	// The engine constructor applies defaults first: the same zero-value
	// config builds and runs with full participation.
	p := testPartition(3, 20, 3, 3, 1)
	m := models.NewSoftmax(3, 3, 0)
	eng, err := engine.New(cfg, m.Dim(), p.Weights(), engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local))
	if err != nil {
		t.Fatalf("zero-value ClientFraction must default to full participation, got: %v", err)
	}
	sel, _, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("defaulted config selected %d of 3 devices, want full participation", len(sel))
	}

	// Out-of-range fractions are rejected by the constructor too (defaults
	// only rewrite the zero value).
	bad := cfg
	bad.ClientFraction = 1.5
	if _, err := engine.New(bad, m.Dim(), p.Weights(), nil); err == nil {
		t.Fatal("ClientFraction > 1 should fail")
	}
	bad.ClientFraction = -0.5
	if _, err := engine.New(bad, m.Dim(), p.Weights(), nil); err == nil {
		t.Fatal("negative ClientFraction should fail")
	}
}

// TestValidateActivateProbBounds: ActivateProb outside [0,1] and the
// ambiguous combination with partial deterministic sampling must fail.
func TestValidateActivateProbBounds(t *testing.T) {
	base := conformanceConfigs()["full"]
	base.ClientFraction = 1 // direct Validate skips the defaulting pass

	bad := base
	bad.ActivateProb = 1.2
	if err := bad.Validate(); err == nil {
		t.Fatal("ActivateProb > 1 should fail validation")
	}
	bad.ActivateProb = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative ActivateProb should fail validation")
	}
	bad.ActivateProb = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN ActivateProb should fail validation")
	}
	bad = base
	bad.ClientFraction = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN ClientFraction should fail validation")
	}
	both := base
	both.ActivateProb = 0.5
	both.ClientFraction = 0.5
	if err := both.Validate(); err == nil {
		t.Fatal("ActivateProb with partial ClientFraction should fail validation")
	}
	ok := base
	ok.ActivateProb = 0.5
	if err := ok.Validate(); err != nil {
		t.Fatalf("ActivateProb 0.5 with full ClientFraction should validate, got: %v", err)
	}
}

// TestActivationDeterminism: the activation draw is a pure function of
// (seed, round, id) — recomputing the cohort must give the same set, and
// the uniform must actually vary across rounds and devices.
func TestActivationDeterminism(t *testing.T) {
	a := engine.ActivatedClients(13, 4, 100, 0.6, nil)
	b := engine.ActivatedClients(13, 4, 100, 0.6, nil)
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("p=0.6 over 100 devices activated %d — want a proper subset", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recomputed cohort differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if u := randx.ActivationUniform(13, 4, 7); u < 0 || u >= 1 {
		t.Fatalf("activation uniform %v outside [0,1)", u)
	}
	if randx.ActivationUniform(13, 4, 7) == randx.ActivationUniform(13, 5, 7) &&
		randx.ActivationUniform(13, 4, 7) == randx.ActivationUniform(13, 4, 8) {
		t.Fatal("activation uniform ignores round and id")
	}
	if got := engine.ActivatedClients(13, 1, 5, 1, nil); len(got) != 5 {
		t.Fatalf("p=1 activated %d of 5", len(got))
	}
}

// TestAllDroppedRound: with DropoutProb at the largest probability below 1
// (Validate excludes 1 itself), every selected device drops before the
// fan-out — a survival would need the server stream to draw ≥ 1-ulp. On
// every backend the run must complete without error, leave the global
// model bitwise at its initialization, and fire hooks with empty
// Participants each round.
func TestAllDroppedRound(t *testing.T) {
	p := testPartition(3, 20, 3, 3, 9)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = 3
	cfg.DropoutProb = math.Nextafter(1, 0)
	fleet := simnet.NewUniformFleet(3, simnet.DeviceProfile{ComputePerIter: 0.01, Uplink: 0.1, Downlink: 0.1}, 5)

	w0 := make([]float64, m.Dim())
	rng := randx.NewStream(99, 0)
	randx.NormalVec(rng, w0, 0, 1)

	check := func(t *testing.T, eng *engine.Engine) {
		eng.SetGlobal(w0)
		rounds := 0
		eng.OnRound(func(info engine.RoundInfo) error {
			rounds++
			if len(info.Participants) != 0 {
				t.Errorf("round %d: %d participants, want 0 (everyone dropped)", info.Round, len(info.Participants))
			}
			return nil
		})
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatalf("all-dropped run must not error: %v", err)
		}
		if rounds != cfg.Rounds {
			t.Fatalf("hooks fired %d times, want %d", rounds, cfg.Rounds)
		}
		got := eng.Global()
		for i := range w0 {
			if got[i] != w0[i] {
				t.Fatalf("global model moved at %d: %v vs %v", i, got[i], w0[i])
			}
		}
	}

	backends := map[string]func([]*engine.Device) engine.Executor{
		"sequential": func(d []*engine.Device) engine.Executor { return engine.NewSequential(d, cfg.Local) },
		"parallel":   func(d []*engine.Device) engine.Executor { return engine.NewParallel(d, cfg.Local, 0) },
		"timed": func(d []*engine.Device) engine.Executor {
			return simnet.NewTimedExecutor(engine.NewSequential(d, cfg.Local), fleet, cfg.Local.Tau)
		},
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			exec := mk(newDevices(p, m, cfg.Seed))
			eng, err := engine.New(cfg, m.Dim(), p.Weights(), exec)
			if err != nil {
				t.Fatal(err)
			}
			check(t, eng)
			if c, ok := exec.(*engine.Parallel); ok {
				c.Close()
			}
		})
	}

	t.Run("tcp", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		var wg sync.WaitGroup
		for k := 0; k < len(p.Clients); k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				w, err := transport.NewWorker(addr, k, p.Clients[k], m, cfg.Seed)
				if err != nil {
					t.Errorf("worker %d: %v", k, err)
					return
				}
				if err := w.Serve(); err != nil {
					t.Errorf("worker %d serve: %v", k, err)
				}
			}(k)
		}
		c, err := transport.NewCoordinatorOn(ln, len(p.Clients), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		eng, err := engine.New(cfg, m.Dim(), c.Weights(), c.Executor(cfg.Local))
		if err != nil {
			t.Fatal(err)
		}
		check(t, eng)
		c.Shutdown()
		wg.Wait()
	})

	// A round that comes back EMPTY despite the fan-out running exercises
	// the other no-participant path: two of three workers flake the final
	// round with retries off, the survivor count falls below the quorum, and
	// the coordinator discards the round — every local is nil, the fold is
	// skipped, and the model stays bitwise put.
	t.Run("tcp-quorum-skip", func(t *testing.T) {
		fcfg := conformanceConfigs()["full"]
		fcfg.Rounds = 3
		flakeRound := fcfg.Rounds // last round: the torn-down flakers never rejoin
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		var wg sync.WaitGroup
		for k := 0; k < len(p.Clients); k++ {
			wg.Add(1)
			if k == 0 { // worker 0 never flakes — it is the sub-quorum survivor
				go func(k int) {
					defer wg.Done()
					w, err := transport.NewWorker(addr, k, p.Clients[k], m, fcfg.Seed)
					if err != nil {
						t.Errorf("worker %d: %v", k, err)
						return
					}
					if err := w.Serve(); err != nil {
						t.Errorf("worker %d serve: %v", k, err)
					}
				}(k)
				continue
			}
			go func(k int) {
				defer wg.Done()
				serveFlakyWorker(t, addr, k, p.Clients[k], m, fcfg.Seed, flakeRound)
			}(k)
		}
		c, err := transport.NewCoordinatorOn(ln, len(p.Clients), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Retries off: the flakes stand, one reporter < quorum 2 → the round
		// is skipped (one skip, within the MaxFailedRounds tolerance).
		c.SetFaultPolicy(transport.FaultPolicy{MaxRetries: 0, MinParticipants: 2, MaxFailedRounds: 3})
		eng, err := engine.New(fcfg, m.Dim(), c.Weights(), c.Executor(fcfg.Local))
		if err != nil {
			t.Fatal(err)
		}
		eng.SetGlobal(w0)
		var before, after []float64
		eng.OnRound(func(info engine.RoundInfo) error {
			switch info.Round {
			case flakeRound - 1:
				before = mathx.Clone(info.Global)
			case flakeRound:
				if len(info.Participants) != 0 {
					t.Errorf("skipped round: %d participants, want 0", len(info.Participants))
				}
				after = mathx.Clone(info.Global)
			}
			return nil
		})
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatalf("a sub-quorum round must not abort the run: %v", err)
		}
		c.Shutdown()
		wg.Wait()
		if before == nil || after == nil {
			t.Fatal("hooks missed the rounds around the skip")
		}
		for i := range before {
			if after[i] != before[i] {
				t.Fatalf("skipped round moved the model at %d: %v vs %v", i, after[i], before[i])
			}
		}
	})
}
