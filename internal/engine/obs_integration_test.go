// Observability and hook-lifecycle regression tests: the engine must stay
// allocation-free per round when observability is off and every hook has
// been unregistered, and must produce one complete stats record per round
// when a recorder is installed.
package engine_test

import (
	"context"
	"runtime"
	"testing"

	"fedproxvr/internal/engine"
	"fedproxvr/internal/models"
	"fedproxvr/internal/obs"
)

// captureStats is an obs.Sink that deep-copies every record (the record is
// only valid during RecordRound — the engine reuses it).
type captureStats struct {
	records []obs.RoundStats
}

func (c *captureStats) RecordRound(rs *obs.RoundStats) {
	cp := *rs
	cp.Clients = append([]obs.ClientStat(nil), rs.Clients...)
	c.records = append(c.records, cp)
}

func (c *captureStats) Close() error { return nil }

// TestDeadHookNoPerRoundAllocs: unregistering every hook must return Run to
// its zero-allocation steady state. The historical unregister only nil-ed
// the hook slot, so len(hooks) > 0 stayed true forever and Run kept copying
// the participants slice — one allocation per round for the rest of the run.
func TestDeadHookNoPerRoundAllocs(t *testing.T) {
	p := testPartition(4, 20, 3, 3, 1)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = 400
	cfg.EvalEvery = 1 << 30 // only the final round measures

	eng, err := engine.New(cfg, m.Dim(), p.Weights(), engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local))
	if err != nil {
		t.Fatal(err)
	}
	off := eng.OnRound(func(engine.RoundInfo) error { return nil })
	off()

	// Warm the reusable buffers before counting.
	if _, _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	// The run itself allocates O(1): the series, two measured points, the
	// context check. A surviving per-round participants copy would cost at
	// least one allocation per round (~400).
	if allocs > 100 {
		t.Fatalf("Run with only dead hooks allocated %d times over %d rounds — the per-round hook path is not dead",
			allocs, cfg.Rounds)
	}
}

// TestHookUnregisterIdempotentAcrossCompaction: an unregister closure must
// be safe to call twice, safe to call from inside the hook itself, and must
// keep working after the engine compacts other unregistered slots out of
// the hook list mid-run.
func TestHookUnregisterIdempotentAcrossCompaction(t *testing.T) {
	p := testPartition(4, 20, 3, 3, 1)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = 8

	eng, err := engine.New(cfg, m.Dim(), p.Weights(), engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local))
	if err != nil {
		t.Fatal(err)
	}
	var countA, countB int
	var offA func()
	offA = eng.OnRound(func(info engine.RoundInfo) error {
		countA++
		if info.Round == 2 {
			offA()
			offA() // double-unregister must not decrement another slot
		}
		return nil
	})
	offB := eng.OnRound(func(engine.RoundInfo) error {
		countB++
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng.OnRound(func(info engine.RoundInfo) error {
		if info.Round == 4 {
			cancel()
		}
		return nil
	})

	if _, err := eng.Run(ctx); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if countA != 2 || countB != 4 {
		t.Fatalf("after first leg: countA=%d countB=%d, want 2/4", countA, countB)
	}

	// A's slot has been compacted away by now; B's closure must still find
	// and remove B (it matches by ID, not by slot index).
	offB()
	offB()
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if countB != 4 {
		t.Fatalf("unregistered hook fired after compaction: countB=%d, want 4", countB)
	}
	if countA != 2 {
		t.Fatalf("self-unregistered hook fired again: countA=%d, want 2", countA)
	}
}

// TestEngineStatsIntegration: with a recorder installed, Run must hand the
// collector one complete record per round — phase timings sampled,
// participants counted, per-client latencies from the executor, cumulative
// gradient evaluations monotone.
func TestEngineStatsIntegration(t *testing.T) {
	p := testPartition(4, 30, 3, 3, 1)
	m := models.NewSoftmax(3, 3, 0)
	cfg := conformanceConfigs()["full"]

	eng, err := engine.New(cfg, m.Dim(), p.Weights(), engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local))
	if err != nil {
		t.Fatal(err)
	}
	cap := &captureStats{}
	eng.SetStats(obs.NewCollector(cap))
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(cap.records) != cfg.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(cap.records), cfg.Rounds)
	}
	var prevEvals int64
	for i, rs := range cap.records {
		if rs.Round != i+1 {
			t.Fatalf("record %d is for round %d", i, rs.Round)
		}
		if rs.Participants != 4 || rs.Failed != 0 || rs.Dropouts != 0 {
			t.Fatalf("round %d: participants/failed/dropouts %d/%d/%d, want 4/0/0",
				rs.Round, rs.Participants, rs.Failed, rs.Dropouts)
		}
		if len(rs.Clients) != 4 {
			t.Fatalf("round %d: %d client stats, want 4", rs.Round, len(rs.Clients))
		}
		for _, cs := range rs.Clients {
			if cs.ID < 0 || cs.ID >= 4 || cs.Seconds < 0 {
				t.Fatalf("round %d: bad client stat %+v", rs.Round, cs)
			}
		}
		if rs.SelectSeconds < 0 || rs.ExecSeconds <= 0 || rs.AggSeconds < 0 || rs.EvalSeconds < 0 {
			t.Fatalf("round %d: phase timings %v/%v/%v/%v", rs.Round,
				rs.SelectSeconds, rs.ExecSeconds, rs.AggSeconds, rs.EvalSeconds)
		}
		if rs.GradEvals <= prevEvals {
			t.Fatalf("round %d: GradEvals %d not increasing from %d", rs.Round, rs.GradEvals, prevEvals)
		}
		prevEvals = rs.GradEvals
	}
}

// BenchmarkEngineRunRoundAllocs measures the full Run loop — selection,
// execution, aggregation, hook dispatch, stats flush — in its default
// configuration (observability off, no live hooks). This is the
// whole-outer-loop complement to BenchmarkEngineRoundAllocs' Step-only
// measurement.
func BenchmarkEngineRunRoundAllocs(b *testing.B) {
	p := testPartition(8, 40, 5, 3, 1)
	m := models.NewSoftmax(5, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = b.N
	cfg.EvalEvery = 1 << 30

	eng, err := engine.New(cfg, m.Dim(), p.Weights(), engine.NewSequential(newDevices(p, m, cfg.Seed), cfg.Local))
	if err != nil {
		b.Fatal(err)
	}
	off := eng.OnRound(func(engine.RoundInfo) error { return nil })
	off()
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := eng.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}
