// Package engine owns the server side of Algorithm 1's outer loop — once,
// for every runtime. A round is: select the participating cohort, inject
// report failures, fan the anchor out to an Executor (sequential, pooled
// parallel goroutines, a simulated-clock fleet, or TCP workers), and fold
// the returned local models through an Aggregator (weighted mean, DP
// clip+noise, or pairwise-masked secure aggregation). Selection, dropout,
// aggregation and metric measurement live only here; the backends under
// internal/core, internal/simnet and internal/transport are Executors
// plugged into this loop, which is what makes their outputs bit-identical
// by construction (every device owns a private RNG stream, and every
// server-side draw comes from one stream consumed in a fixed order).
package engine

import (
	"fmt"
	"time"

	"fedproxvr/internal/data"
	"fedproxvr/internal/optim"
)

// Config describes one federated training run.
type Config struct {
	// Name labels the output series (e.g. "FedProxVR (SARAH)").
	Name string
	// Local is the device-side inner-loop configuration (estimator, η, τ,
	// batch, μ).
	Local optim.LocalConfig
	// Rounds is the number of global iterations T.
	Rounds int
	// EvalEvery computes metrics every k rounds (default 1). Metrics are
	// also always computed at the final round.
	EvalEvery int
	// Test, if non-nil, is the held-out set used for accuracy.
	Test *data.Dataset
	// TrackStationarity adds ‖∇F̄(w̄)‖² (one full-data gradient pass per
	// evaluation) to the series — the paper's convergence indicator (12).
	TrackStationarity bool
	// Parallel fans the devices of each round out to a persistent pool of
	// GOMAXPROCS workers. Results are identical to the sequential schedule
	// because every device owns an independent RNG stream.
	Parallel bool
	// ClientFraction samples this fraction of devices per round (default 1,
	// as in the paper, where all devices participate). An explicit 0 is a
	// configuration error — it would select no devices — and is rejected by
	// Validate; the zero value of an unset Config still defaults to 1
	// because New normalizes defaults before validating.
	ClientFraction float64
	// ActivateProb, when positive, switches selection to probabilistic
	// per-device activation (Rostami & Kia, arXiv:2210.14362): each device
	// independently joins the round with this probability, drawn from a
	// counter-based hash of (Seed, round, device) rather than the server RNG
	// stream. The draw is computable by any node that knows the seed and the
	// round number, which is what lets aggregation-tree shards evaluate
	// their own activation sets without coordination. Mutually exclusive
	// with ClientFraction sampling (< 1) and SecureAgg. 0 disables.
	ActivateProb float64
	// DropoutProb is the probability that a participating device fails to
	// report its round (battery, network loss). The server aggregates over
	// the survivors, reweighting by their data sizes; if every device
	// drops, the global model is unchanged that round. 0 disables failure
	// injection.
	DropoutProb float64
	// DPClip, when positive, clips every device's round update
	// Δ_n = w_n − w̄ to at most this L2 norm before aggregation — the
	// update-norm bounding step of DP-FedAvg. 0 disables clipping.
	DPClip float64
	// DPNoise, when positive, adds iid N(0, (DPNoise·DPClip)²) noise to
	// every coordinate of the aggregated update (requires DPClip > 0).
	// This is the mechanism of DP-FedAvg without a formal (ε, δ)
	// accountant; see the privacy note in DESIGN.md.
	DPNoise float64
	// SecureAgg aggregates through pairwise additive masking
	// (internal/secure): the server only ever observes masked submissions
	// whose sum equals the weighted mean. Requires full participation
	// (ClientFraction 1, DropoutProb 0 — the simplified protocol has no
	// dropout recovery) and is mutually exclusive with DPClip.
	SecureAgg bool
	// SecureMaskScale is the stddev of mask entries (default 100).
	SecureMaskScale float64
	// RoundDeadline, when positive, bounds each round's executor fan-out:
	// devices that have not reported when it fires are cut from the round
	// and counted as stragglers (obs.RoundStats.Stragglers), distinct from
	// failures. The paper's §4.3 time model T·(d_com + d_cmp·τ) makes the
	// slowest participant set d_cmp for the cohort; a deadline caps that
	// tail. 0 (the default) waits for every device, exactly as before.
	RoundDeadline time.Duration
	// MinReport, when positive, is the quorum K: the round is cut as soon
	// as K selected devices have reported, the rest counted as stragglers.
	// The aggregator reweights the reporters by their data shares, so a
	// quorum-cut round stays a valid Algorithm 1 step over the reporting
	// subset (the same partial-participation fold as dropout). 0 disables.
	MinReport int
	// Seed drives every random choice in the run.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Local.Validate(); err != nil {
		return err
	}
	if c.Rounds < 1 {
		return fmt.Errorf("engine: Rounds must be ≥ 1, got %d", c.Rounds)
	}
	if c.EvalEvery < 0 {
		return fmt.Errorf("engine: EvalEvery must be ≥ 0, got %d", c.EvalEvery)
	}
	if c.ClientFraction == 0 {
		return fmt.Errorf("engine: ClientFraction 0 would select no devices every round; leave it unset to default to full participation, or pass a value in (0,1]")
	}
	// Inverted comparisons throughout so NaN is rejected too.
	if !(c.ClientFraction > 0 && c.ClientFraction <= 1) {
		return fmt.Errorf("engine: ClientFraction must be in (0,1], got %v", c.ClientFraction)
	}
	if !(c.ActivateProb >= 0 && c.ActivateProb <= 1) {
		return fmt.Errorf("engine: ActivateProb must be in [0,1], got %v", c.ActivateProb)
	}
	if c.ActivateProb > 0 && c.ClientFraction < 1 {
		return fmt.Errorf("engine: ActivateProb and ClientFraction sampling are mutually exclusive selection modes; use one or the other")
	}
	if !(c.DropoutProb >= 0 && c.DropoutProb < 1) {
		return fmt.Errorf("engine: DropoutProb must be in [0,1), got %v", c.DropoutProb)
	}
	if c.DPClip < 0 {
		return fmt.Errorf("engine: DPClip must be non-negative, got %v", c.DPClip)
	}
	if c.DPNoise < 0 {
		return fmt.Errorf("engine: DPNoise must be non-negative, got %v", c.DPNoise)
	}
	if c.DPNoise > 0 && c.DPClip == 0 {
		return fmt.Errorf("engine: DPNoise requires DPClip > 0 (noise scales with the clip bound)")
	}
	if c.SecureAgg {
		if c.DPClip > 0 {
			return fmt.Errorf("engine: SecureAgg and DPClip are mutually exclusive aggregators")
		}
		if c.DropoutProb > 0 || (c.ClientFraction > 0 && c.ClientFraction < 1) || c.ActivateProb > 0 {
			return fmt.Errorf("engine: SecureAgg needs full participation (no sampling, activation, or dropout): absent clients' pairwise masks cannot cancel")
		}
	}
	if c.SecureMaskScale < 0 {
		return fmt.Errorf("engine: SecureMaskScale must be non-negative, got %v", c.SecureMaskScale)
	}
	if c.RoundDeadline < 0 {
		return fmt.Errorf("engine: RoundDeadline must be non-negative, got %v", c.RoundDeadline)
	}
	if c.MinReport < 0 {
		return fmt.Errorf("engine: MinReport must be non-negative, got %d", c.MinReport)
	}
	if c.SecureAgg && (c.RoundDeadline > 0 || c.MinReport > 0) {
		return fmt.Errorf("engine: SecureAgg cannot combine with RoundDeadline/MinReport: a cut round's absent masks cannot cancel")
	}
	return nil
}

// withDefaults returns the config with zero-value fields normalized.
func (c Config) withDefaults() Config {
	if c.EvalEvery == 0 {
		c.EvalEvery = 1
	}
	if c.ClientFraction == 0 {
		c.ClientFraction = 1
	}
	return c
}
