package engine_test

import (
	"testing"

	"fedproxvr/internal/engine"
	"fedproxvr/internal/models"
)

// BenchmarkEngineRoundAllocs measures steady-state per-round allocations of
// the pooled parallel executor: the worker pool, the locals buffer and the
// selection buffer are all reused across rounds, so a round allocates O(1)
// (the WaitGroup escaping into the job structs) — versus the historical
// per-Step `make([][]float64, n)` + goroutine-per-device fan-out.
func BenchmarkEngineRoundAllocs(b *testing.B) {
	p := testPartition(8, 40, 5, 3, 1)
	m := models.NewSoftmax(5, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = 1 << 30 // stepped manually; never reached

	devices := make([]*engine.Device, len(p.Clients))
	for i, shard := range p.Clients {
		devices[i] = engine.NewDevice(i, shard, m, cfg.Seed)
	}
	exec := engine.NewParallel(devices, cfg.Local, 0)
	defer exec.Close()
	eng, err := engine.New(cfg, m.Dim(), p.Weights(), exec)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := eng.Step(); err != nil { // warm the reusable buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialRoundAllocs is the sequential baseline for the same
// round (no pool, no goroutines, same reused buffers).
func BenchmarkSequentialRoundAllocs(b *testing.B) {
	p := testPartition(8, 40, 5, 3, 1)
	m := models.NewSoftmax(5, 3, 0)
	cfg := conformanceConfigs()["full"]
	cfg.Rounds = 1 << 30

	devices := make([]*engine.Device, len(p.Clients))
	for i, shard := range p.Clients {
		devices[i] = engine.NewDevice(i, shard, m, cfg.Seed)
	}
	eng, err := engine.New(cfg, m.Dim(), p.Weights(), engine.NewSequential(devices, cfg.Local))
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
