// Package secure implements single-round secure aggregation by pairwise
// additive masking (Bonawitz et al.-style, simplified): every pair of
// devices (n, m), n < m, shares a mask vector derived from a pairwise
// seed; device n ADDS the mask, device m SUBTRACTS it, so the server-side
// SUM of all submissions equals the sum of the raw updates while each
// individual submission is statistically masked.
//
// Weighted FedAvg aggregation Σ (D_n/D)·w_n is handled by having each
// device pre-scale its update by D_n before masking; the server divides
// the unmasked sum by D.
//
// Simplifications versus the full protocol, stated explicitly: pairwise
// seeds are derived from a shared experiment seed instead of a
// Diffie–Hellman exchange, and there is no dropout recovery — if any
// masked submission is missing, the sum is garbage (Aggregate requires
// all N submissions). These do not affect what the simulation studies:
// the server never observes an individual update in the clear.
package secure

import (
	"fmt"

	"fedproxvr/internal/mathx"
	"fedproxvr/internal/randx"
)

// Masker produces one device's masked submissions.
type Masker struct {
	ID        int // this device's id in [0, N)
	N         int // total device count
	Dim       int
	GroupSeed int64 // shared across the cohort (stands in for key agreement)
	// MaskScale is the standard deviation of mask entries; it should be
	// large relative to update magnitudes (default 100 if zero).
	MaskScale float64
}

// pairSeed derives the seed shared by devices a < b.
func pairSeed(groupSeed int64, a, b int) int64 {
	return randx.DeriveSeed(groupSeed, int64(a)*1_000_003+int64(b))
}

// Mask writes scale·w plus this device's pairwise masks into dst.
// dst must not alias w.
func (mk *Masker) Mask(dst, w []float64, scale float64) error {
	if mk.N < 2 {
		return fmt.Errorf("secure: need at least 2 devices, got %d", mk.N)
	}
	if mk.ID < 0 || mk.ID >= mk.N {
		return fmt.Errorf("secure: id %d outside [0,%d)", mk.ID, mk.N)
	}
	if len(dst) != mk.Dim || len(w) != mk.Dim {
		return fmt.Errorf("secure: dimension mismatch")
	}
	ms := mk.MaskScale
	if ms == 0 {
		ms = 100
	}
	for i := range dst {
		dst[i] = scale * w[i]
	}
	mask := make([]float64, mk.Dim)
	for other := 0; other < mk.N; other++ {
		if other == mk.ID {
			continue
		}
		lo, hi := mk.ID, other
		sign := 1.0
		if lo > hi {
			lo, hi = hi, lo
			sign = -1.0 // the higher id subtracts the pair's mask
		}
		rng := randx.New(pairSeed(mk.GroupSeed, lo, hi))
		randx.NormalVec(rng, mask, 0, ms)
		mathx.Axpy(sign, mask, dst)
	}
	return nil
}

// Aggregate sums all N masked submissions (masks cancel exactly in
// floating point up to rounding) and divides by totalScale, recovering
// Σ scale_n·w_n / totalScale — the weighted average when scale_n = D_n and
// totalScale = D.
func Aggregate(masked [][]float64, totalScale float64) ([]float64, error) {
	if len(masked) < 2 {
		return nil, fmt.Errorf("secure: need all submissions (≥2), got %d", len(masked))
	}
	if totalScale == 0 {
		return nil, fmt.Errorf("secure: totalScale must be non-zero")
	}
	dim := len(masked[0])
	sum := make([]float64, dim)
	for i, m := range masked {
		if len(m) != dim {
			return nil, fmt.Errorf("secure: submission %d has dim %d, want %d", i, len(m), dim)
		}
		mathx.Axpy(1, m, sum)
	}
	mathx.Scal(1/totalScale, sum)
	return sum, nil
}

// LeakageRatio measures how well a single masked submission hides its
// update: ‖masked − scale·w‖ / ‖scale·w‖. Values ≫ 1 mean the submission
// is dominated by mask, i.e. individually uninformative.
func LeakageRatio(masked, w []float64, scale float64) float64 {
	diff := make([]float64, len(w))
	for i := range diff {
		diff[i] = masked[i] - scale*w[i]
	}
	denom := mathx.Nrm2(w) * scale
	if denom == 0 {
		return mathx.Nrm2(diff)
	}
	return mathx.Nrm2(diff) / denom
}
