package secure

import (
	"math"
	"testing"
	"testing/quick"

	"fedproxvr/internal/mathx"
	"fedproxvr/internal/randx"
)

func maskAll(t *testing.T, updates [][]float64, scales []float64, seed int64) [][]float64 {
	t.Helper()
	n := len(updates)
	dim := len(updates[0])
	masked := make([][]float64, n)
	for id := 0; id < n; id++ {
		mk := &Masker{ID: id, N: n, Dim: dim, GroupSeed: seed}
		masked[id] = make([]float64, dim)
		if err := mk.Mask(masked[id], updates[id], scales[id]); err != nil {
			t.Fatal(err)
		}
	}
	return masked
}

func TestMasksCancelInAggregate(t *testing.T) {
	rng := randx.New(1)
	const n, dim = 5, 40
	updates := make([][]float64, n)
	scales := make([]float64, n)
	var total float64
	want := make([]float64, dim)
	for i := range updates {
		updates[i] = make([]float64, dim)
		randx.NormalVec(rng, updates[i], 0, 1)
		scales[i] = float64(10 + i*7) // unequal D_n
		total += scales[i]
	}
	for i := range updates {
		mathx.Axpy(scales[i], updates[i], want)
	}
	mathx.Scal(1/total, want) // the true weighted average

	masked := maskAll(t, updates, scales, 99)
	got, err := Aggregate(masked, total)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		// Masks are O(100); cancellation leaves rounding noise only.
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("aggregate differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestIndividualSubmissionsAreMasked(t *testing.T) {
	rng := randx.New(2)
	const n, dim = 4, 60
	updates := make([][]float64, n)
	scales := make([]float64, n)
	for i := range updates {
		updates[i] = make([]float64, dim)
		randx.NormalVec(rng, updates[i], 0, 1)
		scales[i] = 1
	}
	masked := maskAll(t, updates, scales, 7)
	for i := range masked {
		ratio := LeakageRatio(masked[i], updates[i], scales[i])
		if ratio < 10 {
			t.Fatalf("submission %d insufficiently masked: leakage ratio %v", i, ratio)
		}
	}
}

func TestAggregateRequiresAllSubmissions(t *testing.T) {
	rng := randx.New(3)
	const n, dim = 4, 30
	updates := make([][]float64, n)
	scales := make([]float64, n)
	for i := range updates {
		updates[i] = make([]float64, dim)
		randx.NormalVec(rng, updates[i], 0, 1)
		scales[i] = 1
	}
	masked := maskAll(t, updates, scales, 11)
	full, err := Aggregate(masked, float64(n))
	if err != nil {
		t.Fatal(err)
	}
	// Dropping one submission leaves uncancelled masks → garbage.
	partial, err := Aggregate(masked[:n-1], float64(n-1))
	if err != nil {
		t.Fatal(err)
	}
	if mathx.Nrm2(partial) < 10*mathx.Nrm2(full) {
		t.Fatalf("dropout should corrupt the sum: ‖partial‖=%v vs ‖full‖=%v",
			mathx.Nrm2(partial), mathx.Nrm2(full))
	}
}

func TestMaskerValidation(t *testing.T) {
	mk := &Masker{ID: 0, N: 1, Dim: 3, GroupSeed: 1}
	dst := make([]float64, 3)
	if err := mk.Mask(dst, []float64{1, 2, 3}, 1); err == nil {
		t.Fatal("N=1 should error")
	}
	mk = &Masker{ID: 5, N: 3, Dim: 3, GroupSeed: 1}
	if err := mk.Mask(dst, []float64{1, 2, 3}, 1); err == nil {
		t.Fatal("id out of range should error")
	}
	mk = &Masker{ID: 0, N: 3, Dim: 4, GroupSeed: 1}
	if err := mk.Mask(dst, []float64{1, 2, 3}, 1); err == nil {
		t.Fatal("dim mismatch should error")
	}
	if _, err := Aggregate(nil, 1); err == nil {
		t.Fatal("empty aggregate should error")
	}
	if _, err := Aggregate([][]float64{{1}, {2}}, 0); err == nil {
		t.Fatal("zero totalScale should error")
	}
	if _, err := Aggregate([][]float64{{1}, {2, 3}}, 1); err == nil {
		t.Fatal("ragged submissions should error")
	}
}

// Property: for any cohort size ≥2 and any updates, aggregation recovers
// the exact weighted mean.
func TestSecureAggregationQuick(t *testing.T) {
	f := func(seed int64, nRaw, dimRaw uint8) bool {
		n := 2 + int(nRaw%6)
		dim := 1 + int(dimRaw%20)
		rng := randx.New(seed)
		updates := make([][]float64, n)
		scales := make([]float64, n)
		var total float64
		want := make([]float64, dim)
		for i := range updates {
			updates[i] = make([]float64, dim)
			randx.NormalVec(rng, updates[i], 0, 1)
			scales[i] = 1 + rng.Float64()*5
			total += scales[i]
		}
		for i := range updates {
			mathx.Axpy(scales[i], updates[i], want)
		}
		mathx.Scal(1/total, want)

		masked := make([][]float64, n)
		for id := 0; id < n; id++ {
			mk := &Masker{ID: id, N: n, Dim: dim, GroupSeed: seed + 1}
			masked[id] = make([]float64, dim)
			if err := mk.Mask(masked[id], updates[id], scales[id]); err != nil {
				return false
			}
		}
		got, err := Aggregate(masked, total)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
