// Package checkpoint persists and resumes federated training runs: the
// global model, the round counter and the metric history are written
// atomically (temp file + rename + parent-dir fsync) in gob format with a
// CRC32 integrity trailer, so a long experiment survives process restarts
// — including a SIGKILL mid-write.
//
// Resume is bit-identical: no RNG stream needs serializing because every
// stream (server and per-device) is re-keyed at each round boundary from a
// pure (seed, stream, round) hash — see randx.RoundSeed and
// engine.Device.BeginRound — so a run resumed at round t draws exactly
// what the uninterrupted run would have drawn from round t+1 on.
package checkpoint

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"fedproxvr/internal/core"
	"fedproxvr/internal/engine"
	"fedproxvr/internal/metrics"
)

// Version guards the on-disk format. Version 2 appends a little-endian
// IEEE CRC32 of the gob payload as a 4-byte trailer; version 1 files
// (plain gob, no trailer) are still read.
const Version = 2

// ErrCorrupt marks a checkpoint file that exists but fails integrity
// verification — truncated, bit-flipped, or torn. Callers holding a
// previous-round checkpoint (internal/jobs rotates ckpt → ckpt.prev)
// should fall back to it with errors.Is(err, ErrCorrupt) instead of
// treating the job as unrecoverable.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// State is everything needed to resume a run.
type State struct {
	Version int
	Name    string
	Round   int
	Seed    int64
	Global  []float64
	Points  []metrics.Point
}

// Save writes the state atomically: a temp file in the same directory is
// fsync'd and renamed over the target, and the parent directory is fsync'd
// after the rename so the new directory entry itself is durable — without
// it a crash between rename and the next journal commit can resurrect the
// old checkpoint (or none at all).
func Save(path string, s *State) error {
	s.Version = Version
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	// The CRC is computed over the exact bytes written: the payload streams
	// through the hash on its way to the file, and the 4-byte trailer makes
	// any later truncation or bit flip detectable at Load.
	h := crc32.NewIEEE()
	if err := gob.NewEncoder(io.MultiWriter(tmp, h)).Encode(s); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	if _, err := tmp.Write(trailer[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: trailer: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("checkpoint: close dir: %w", err)
	}
	return nil
}

// encodeRaw writes the state without normalizing Version; used by tests to
// construct invalid checkpoints.
func encodeRaw(w io.Writer, s *State) error { return gob.NewEncoder(w).Encode(s) }

// Load reads a state; os.IsNotExist(err) distinguishes a fresh start and
// errors.Is(err, ErrCorrupt) a damaged file (truncated or bit-flipped).
// Version-2 files are verified against their CRC32 trailer; trailerless
// version-1 files from before the trailer existed are still accepted.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if n := len(data); n > 4 {
		want := binary.LittleEndian.Uint32(data[n-4:])
		if crc32.ChecksumIEEE(data[:n-4]) == want {
			var s State
			if err := gob.NewDecoder(bytes.NewReader(data[:n-4])).Decode(&s); err != nil {
				return nil, fmt.Errorf("%w: %s: verified payload undecodable: %v", ErrCorrupt, path, err)
			}
			if s.Version != Version {
				return nil, fmt.Errorf("checkpoint: %s has version %d, want %d", path, s.Version, Version)
			}
			return &s, nil
		}
	}
	// No valid trailer: either a legacy version-1 file (plain gob, which
	// must consume the file exactly) or a damaged version-2 file.
	r := bytes.NewReader(data)
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if r.Len() != 0 {
		// A legacy whole-file gob consumes the file exactly; leftover bytes
		// mean a trailered file whose CRC no longer matches — a bit flip
		// landed somewhere gob tolerates (a float's mantissa, the version
		// field, the trailer itself).
		return nil, fmt.Errorf("%w: %s: CRC32 trailer mismatch", ErrCorrupt, path)
	}
	if s.Version != 1 {
		if s.Version == Version {
			// A well-formed current-version payload with no trailer at all:
			// the file was truncated by exactly the trailer's four bytes.
			return nil, fmt.Errorf("%w: %s: missing CRC32 trailer", ErrCorrupt, path)
		}
		return nil, fmt.Errorf("checkpoint: %s has version %d, want %d", path, s.Version, Version)
	}
	return &s, nil
}

// Train runs the remaining rounds of r's configuration, checkpointing to
// path every `every` rounds (and at the end). If path already holds a
// checkpoint for the same run name, training resumes from it: the global
// model is restored and only the remaining rounds execute. It returns the
// full metric series (restored prefix + new points).
func Train(r *core.Runner, path string, every int) (*metrics.Series, error) {
	return TrainContext(context.Background(), r, path, every)
}

// TrainContext is Train with cancellation: it snapshots through the
// engine's per-round hook, so a run interrupted by ctx (or by a crash
// after the last snapshot) resumes from path on the next call. On
// cancellation it returns the series so far alongside ctx.Err().
func TrainContext(ctx context.Context, r *core.Runner, path string, every int) (*metrics.Series, error) {
	cfg := r.Config()
	if every < 1 {
		every = 1
	}
	eng := r.Engine()
	var prefix []metrics.Point

	if st, err := Load(path); err == nil {
		if st.Name != cfg.Name {
			return nil, fmt.Errorf("checkpoint: %s holds run %q, not %q", path, st.Name, cfg.Name)
		}
		if len(st.Global) != len(r.Global()) {
			return nil, fmt.Errorf("checkpoint: model dim %d, want %d", len(st.Global), len(r.Global()))
		}
		r.SetGlobal(st.Global)
		eng.SetRound(st.Round)
		prefix = st.Points
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	unhook := eng.OnRound(func(info engine.RoundInfo) error {
		if info.Round%every != 0 && info.Round != cfg.Rounds {
			return nil
		}
		points := make([]metrics.Point, 0, len(prefix)+len(info.Series.Points))
		points = append(append(points, prefix...), info.Series.Points...)
		return Save(path, &State{
			Name:   cfg.Name,
			Round:  info.Round,
			Seed:   cfg.Seed,
			Global: append([]float64(nil), info.Global...),
			Points: points,
		})
	})
	defer unhook()

	series, err := eng.Run(ctx)
	full := &metrics.Series{Name: cfg.Name}
	full.Points = append(append(full.Points, prefix...), series.Points...)
	if err != nil {
		return full, err
	}
	return full, nil
}
