// Package checkpoint persists and resumes federated training runs: the
// global model, the round counter and the metric history are written
// atomically (temp file + rename) in gob format, so a long experiment
// survives process restarts.
//
// Caveat, stated honestly: device RNG streams are not serialized, so a
// resumed run draws fresh local mini-batches — it is statistically
// equivalent to, but not bit-identical with, an uninterrupted run.
package checkpoint

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fedproxvr/internal/core"
	"fedproxvr/internal/engine"
	"fedproxvr/internal/metrics"
)

// Version guards the on-disk format.
const Version = 1

// State is everything needed to resume a run.
type State struct {
	Version int
	Name    string
	Round   int
	Seed    int64
	Global  []float64
	Points  []metrics.Point
}

// Save writes the state atomically: a temp file in the same directory is
// fsync'd and renamed over the target, and the parent directory is fsync'd
// after the rename so the new directory entry itself is durable — without
// it a crash between rename and the next journal commit can resurrect the
// old checkpoint (or none at all).
func Save(path string, s *State) error {
	s.Version = Version
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if err := gob.NewEncoder(tmp).Encode(s); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("checkpoint: close dir: %w", err)
	}
	return nil
}

// encodeRaw writes the state without normalizing Version; used by tests to
// construct invalid checkpoints.
func encodeRaw(w io.Writer, s *State) error { return gob.NewEncoder(w).Encode(s) }

// Load reads a state; os.IsNotExist(err) distinguishes a fresh start.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s State
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has version %d, want %d", path, s.Version, Version)
	}
	return &s, nil
}

// Train runs the remaining rounds of r's configuration, checkpointing to
// path every `every` rounds (and at the end). If path already holds a
// checkpoint for the same run name, training resumes from it: the global
// model is restored and only the remaining rounds execute. It returns the
// full metric series (restored prefix + new points).
func Train(r *core.Runner, path string, every int) (*metrics.Series, error) {
	return TrainContext(context.Background(), r, path, every)
}

// TrainContext is Train with cancellation: it snapshots through the
// engine's per-round hook, so a run interrupted by ctx (or by a crash
// after the last snapshot) resumes from path on the next call. On
// cancellation it returns the series so far alongside ctx.Err().
func TrainContext(ctx context.Context, r *core.Runner, path string, every int) (*metrics.Series, error) {
	cfg := r.Config()
	if every < 1 {
		every = 1
	}
	eng := r.Engine()
	var prefix []metrics.Point

	if st, err := Load(path); err == nil {
		if st.Name != cfg.Name {
			return nil, fmt.Errorf("checkpoint: %s holds run %q, not %q", path, st.Name, cfg.Name)
		}
		if len(st.Global) != len(r.Global()) {
			return nil, fmt.Errorf("checkpoint: model dim %d, want %d", len(st.Global), len(r.Global()))
		}
		r.SetGlobal(st.Global)
		eng.SetRound(st.Round)
		prefix = st.Points
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	unhook := eng.OnRound(func(info engine.RoundInfo) error {
		if info.Round%every != 0 && info.Round != cfg.Rounds {
			return nil
		}
		points := make([]metrics.Point, 0, len(prefix)+len(info.Series.Points))
		points = append(append(points, prefix...), info.Series.Points...)
		return Save(path, &State{
			Name:   cfg.Name,
			Round:  info.Round,
			Seed:   cfg.Seed,
			Global: append([]float64(nil), info.Global...),
			Points: points,
		})
	})
	defer unhook()

	series, err := eng.Run(ctx)
	full := &metrics.Series{Name: cfg.Name}
	full.Points = append(append(full.Points, prefix...), series.Points...)
	if err != nil {
		return full, err
	}
	return full, nil
}
