package checkpoint

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fedproxvr/internal/core"
	"fedproxvr/internal/data"
	"fedproxvr/internal/engine"
	"fedproxvr/internal/metrics"
	"fedproxvr/internal/models"
	"fedproxvr/internal/optim"
	"fedproxvr/internal/randx"
)

func fixture(t *testing.T, rounds int) (*core.Runner, models.Model, *data.Partition) {
	t.Helper()
	rng := randx.New(1)
	p := &data.Partition{Clients: make([]*data.Dataset, 3)}
	x := make([]float64, 3)
	for k := range p.Clients {
		ds := data.New(3, 3, 30)
		for i := 0; i < 30; i++ {
			c := (k + i) % 3
			randx.NormalVec(rng, x, float64(c)*2, 0.5)
			ds.AppendClass(x, c)
		}
		p.Clients[k] = ds
	}
	m := models.NewSoftmax(3, 3, 0)
	cfg := core.FedProxVR(optim.SARAH, 5, 1, 0.1, 5, 8, rounds)
	cfg.Seed = 2
	r, err := core.NewRunner(m, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, m, p
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := &State{
		Name:   "test-run",
		Round:  7,
		Seed:   42,
		Global: []float64{1.5, -2.5, 3.5},
		Points: []metrics.Point{{Round: 1, TrainLoss: 2.0}},
	}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "test-run" || back.Round != 7 || back.Seed != 42 {
		t.Fatalf("metadata corrupted: %+v", back)
	}
	for i, v := range st.Global {
		if back.Global[i] != v {
			t.Fatal("model corrupted")
		}
	}
	if len(back.Points) != 1 || back.Points[0].TrainLoss != 2.0 {
		t.Fatal("points corrupted")
	}
}

func TestSaveDurability(t *testing.T) {
	// The parent-directory fsync must not break overwrite-in-place: a
	// second Save over the same path replaces the first atomically and no
	// temp file survives.
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, &State{Name: "a", Round: 1, Global: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, &State{Name: "a", Round: 2, Global: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Round != 2 || back.Global[0] != 2 {
		t.Fatalf("second Save did not win: %+v", back)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		t.Fatalf("temp files leaked: %v", entries)
	}
	// A missing parent directory fails up front (CreateTemp), before any
	// rename or dir sync could run against it.
	missing := filepath.Join(dir, "no-such-dir", "run.ckpt")
	if err := Save(missing, &State{Name: "a"}); err == nil {
		t.Fatal("Save into a missing directory should error")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); !os.IsNotExist(err) {
		t.Fatalf("missing file should be IsNotExist, got %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("corrupted file should error")
	}
}

func TestTrainCheckpointsAndCompletes(t *testing.T) {
	r, _, _ := fixture(t, 10)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	series, err := Train(r, path, 3)
	if err != nil {
		t.Fatal(err)
	}
	last, ok := series.Last()
	if !ok || last.Round != 10 {
		t.Fatalf("run incomplete: %+v", last)
	}
	if last.TrainLoss >= series.Points[0].TrainLoss {
		t.Fatal("no progress")
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 10 {
		t.Fatalf("final checkpoint at round %d", st.Round)
	}
}

func TestTrainResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	// Phase 1: run 4 of 10 rounds, checkpoint, "crash".
	r1, _, _ := fixture(t, 4)
	if _, err := Train(r1, path, 2); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 4 {
		t.Fatalf("phase 1 checkpoint at %d", st.Round)
	}
	phase1Loss := r1.GlobalLoss()

	// Phase 2: new process, 10-round config, resumes at round 5.
	r2, _, _ := fixture(t, 10)
	series, err := Train(r2, path, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The restored model must match the checkpoint (resume actually used it).
	if r2.GlobalLoss() >= phase1Loss {
		t.Fatalf("resumed run did not improve on checkpoint: %v vs %v",
			r2.GlobalLoss(), phase1Loss)
	}
	last, _ := series.Last()
	if last.Round != 10 {
		t.Fatalf("resumed run ended at round %d", last.Round)
	}
	// Series includes phase-1 history.
	if series.Points[0].Round != 0 {
		t.Fatal("restored series lost its prefix")
	}
}

func TestTrainContextCancelThenResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	// Cancel after round 4; snapshots land every 2 rounds.
	r1, _, _ := fixture(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	r1.Engine().OnRound(func(info engine.RoundInfo) error {
		if info.Round == 4 {
			cancel()
		}
		return nil
	})
	series, err := TrainContext(ctx, r1, path, 2)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if last, _ := series.Last(); last.Round != 4 {
		t.Fatalf("cancelled series ends at %d, want 4", last.Round)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 4 {
		t.Fatalf("snapshot at round %d, want 4", st.Round)
	}

	// A fresh process resumes from the snapshot and completes the run.
	r2, _, _ := fixture(t, 10)
	full, err := TrainContext(context.Background(), r2, path, 2)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := full.Last()
	if last.Round != 10 {
		t.Fatalf("resumed run ends at %d, want 10", last.Round)
	}
	if full.Points[0].Round != 0 {
		t.Fatal("resumed series lost its prefix")
	}
	if last.TrainLoss >= full.Points[0].TrainLoss {
		t.Fatal("no progress across cancel/resume")
	}
}

func TestTrainRejectsForeignCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, &State{Name: "other-run", Global: make([]float64, 12)}); err != nil {
		t.Fatal(err)
	}
	r, _, _ := fixture(t, 5)
	if _, err := Train(r, path, 1); err == nil {
		t.Fatal("foreign checkpoint should be rejected")
	}
	// Dimension mismatch also rejected.
	if err := Save(path, &State{Name: r.Config().Name, Global: make([]float64, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(r, path, 1); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
}

func TestLoadRejectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := &State{Name: "x", Round: 3, Global: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every byte position in turn: wherever the flip lands
	// — gob header, a float's mantissa (which gob would happily decode to a
	// wrong model), the version field, or the trailer itself — Load must
	// refuse with ErrCorrupt rather than resume from silently wrong state.
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: want ErrCorrupt, got %v", pos, err)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := &State{Name: "x", Round: 3, Global: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{len(data) - 1, len(data) - 4, len(data) / 2, 3, 0} {
		if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: want ErrCorrupt, got %v", keep, err)
		}
	}
}

func TestLoadAcceptsLegacyV1(t *testing.T) {
	// A pre-trailer checkpoint: plain gob, Version 1, no CRC. Old state
	// dirs must keep restoring after the format bump.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := &State{Version: 1, Name: "legacy", Round: 5, Global: []float64{1, 2}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := encodeRaw(f, st); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := Load(path)
	if err != nil {
		t.Fatalf("legacy v1 checkpoint rejected: %v", err)
	}
	if back.Name != "legacy" || back.Round != 5 {
		t.Fatalf("legacy state mangled: %+v", back)
	}
}

func TestResumeBitIdentical(t *testing.T) {
	// The restart = never-died claim, at the Train level: 5 rounds +
	// crash + resume to 10 must produce the exact bytes of an
	// uninterrupted 10-round run (round-keyed RNG re-seeding means no
	// stream history is lost with the process).
	dir := t.TempDir()
	r0, _, _ := fixture(t, 10)
	if _, err := Train(r0, filepath.Join(dir, "straight.ckpt"), 10); err != nil {
		t.Fatal(err)
	}

	interrupted := filepath.Join(dir, "interrupted.ckpt")
	r1, _, _ := fixture(t, 5)
	if _, err := Train(r1, interrupted, 1); err != nil {
		t.Fatal(err)
	}
	r2, _, _ := fixture(t, 10)
	if _, err := Train(r2, interrupted, 1); err != nil {
		t.Fatal(err)
	}

	want, got := r0.Global(), r2.Global()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resumed model differs from uninterrupted run at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestVersionGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	st := &State{Name: "x"}
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	// Tamper: re-encode with a wrong version via direct struct write.
	st.Version = 99
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := encodeRaw(f, st); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(path); err == nil {
		t.Fatal("wrong version should be rejected")
	}
}
