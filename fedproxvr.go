// Package fedproxvr is a from-scratch Go reproduction of "Federated
// Learning with Proximal Stochastic Variance Reduced Gradient Algorithms"
// (Dinh, Tran, Nguyen, Bao, Zomaya, Zhou — ICPP 2020).
//
// It provides:
//
//   - FedProxVR (Algorithm 1) with SVRG and SARAH local estimators, plus
//     the FedAvg and FedProx baselines, over any Model (convex losses and
//     a built-in NN/CNN stack with hand-derived backprop);
//   - heterogeneous federated dataset generators (FedProx-style
//     Synthetic(α,β), procedural MNIST-like and Fashion-like images,
//     label-skew power-law partitioners);
//   - executable versions of the paper's theory: Lemma 1 bounds, the
//     Theorem 1 federated factor Θ, and the Section 4.3 training-time
//     optimizer;
//   - an in-process parallel simulator and a gob-over-TCP distributed
//     runtime that reproduce each other bit-for-bit;
//   - regenerators for every figure and table of the paper's evaluation.
//
// Quick start:
//
//	task := fedproxvr.SyntheticTask(fedproxvr.SyntheticOptions{Seed: 1})
//	cfg := fedproxvr.FedProxVR(fedproxvr.SARAH, 5, task.L, 0.1, 20, 32, 100)
//	cfg.Test = task.Test
//	series, w, err := fedproxvr.Train(task, cfg)
package fedproxvr

import (
	"context"
	"fmt"

	"fedproxvr/internal/core"
	"fedproxvr/internal/data"
	"fedproxvr/internal/metrics"
	"fedproxvr/internal/models"
	"fedproxvr/internal/optim"
	"fedproxvr/internal/randx"
	"fedproxvr/internal/theory"
)

// Re-exported core types. The aliases give users a single import while the
// implementation stays in focused internal packages.
type (
	// Config describes one federated training run (algorithm, T, τ, η, μ…).
	Config = core.Config
	// Model is the differentiable empirical-risk oracle all algorithms use.
	Model = models.Model
	// Classifier is a Model that predicts class labels.
	Classifier = models.Classifier
	// Dataset is a dense supervised dataset.
	Dataset = data.Dataset
	// Partition is a federated dataset (one shard per device).
	Partition = data.Partition
	// Series records per-round training metrics.
	Series = metrics.Series
	// Point is one round's metrics.
	Point = metrics.Point
	// Estimator selects the local gradient estimator (SGD, SVRG, SARAH).
	Estimator = optim.Estimator
	// LocalConfig is the device-side inner-loop configuration.
	LocalConfig = optim.LocalConfig
	// Problem carries the constants of Assumption 1 for theory calculators.
	Problem = theory.Problem
	// Optimum is a solution of the Section 4.3 training-time problem.
	Optimum = theory.Optimum
)

// Estimator values.
const (
	SGD   = optim.SGD
	SVRG  = optim.SVRG
	SARAH = optim.SARAH
)

// Config constructors (see core for details).
var (
	// FedAvg builds the SGD baseline configuration.
	FedAvg = core.FedAvg
	// FedProx builds the proximal-SGD baseline configuration.
	FedProx = core.FedProx
	// FedProxVR builds the paper's algorithm configuration.
	FedProxVR = core.FedProxVR
	// StepSize returns η = 1/(βL).
	StepSize = core.StepSize
)

// Task bundles everything one experiment needs: the model, the federated
// training partition, a held-out test set, a smoothness estimate L used for
// η = 1/(βL), and an optional non-zero initialization.
type Task struct {
	Model Model
	Part  *Partition
	Test  *Dataset
	L     float64
	InitW []float64
}

// Runner drives a prepared federated run; it exposes the engine for hooks
// and checkpointing (see internal/checkpoint).
type Runner = core.Runner

// NewRunner prepares a federated run on a task: the task's test set is
// used unless cfg overrides it, and the task's initialization (if any) is
// applied to the global model.
func NewRunner(task Task, cfg Config) (*Runner, error) {
	if task.Model == nil || task.Part == nil {
		return nil, fmt.Errorf("fedproxvr: task needs Model and Part")
	}
	if cfg.Test == nil {
		cfg.Test = task.Test
	}
	r, err := core.NewRunner(task.Model, task.Part, cfg)
	if err != nil {
		return nil, err
	}
	if task.InitW != nil {
		r.SetGlobal(task.InitW)
	}
	return r, nil
}

// Train runs one federated training configuration on a task and returns
// the metric series and the final global model.
func Train(task Task, cfg Config) (*Series, []float64, error) {
	return TrainContext(context.Background(), task, cfg)
}

// TrainContext is Train with cancellation: the run stops between rounds
// when ctx is done and returns the series so far alongside ctx.Err().
func TrainContext(ctx context.Context, task Task, cfg Config) (*Series, []float64, error) {
	r, err := NewRunner(task, cfg)
	if err != nil {
		return nil, nil, err
	}
	series, err := r.RunContext(ctx)
	w := make([]float64, task.Model.Dim())
	copy(w, r.Global())
	if err != nil {
		return series, w, err
	}
	return series, w, nil
}

// SyntheticOptions controls SyntheticTask.
type SyntheticOptions struct {
	Devices    int     // default 100 (paper)
	Alpha      float64 // model heterogeneity, default 1
	Beta       float64 // feature heterogeneity, default 1
	MinSamples int     // default 37 (paper range)
	MaxSamples int     // default 3277
	L2         float64 // optional regularization
	Seed       int64
}

// SyntheticTask builds the paper's "Synthetic" convex experiment: the
// FedProx-style Synthetic(α,β) dataset with a multinomial logistic
// regression model. 25% of every shard is held out into the global test
// set (the paper splits 75/25).
func SyntheticTask(o SyntheticOptions) Task {
	if o.Devices == 0 {
		o.Devices = 100
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Beta == 0 {
		o.Beta = 1
	}
	if o.MinSamples == 0 {
		o.MinSamples = 37
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 3277
	}
	cfg := data.SyntheticConfig{
		NumDevices: o.Devices,
		Dim:        60,
		NumClasses: 10,
		Alpha:      o.Alpha,
		Beta:       o.Beta,
		MinSamples: o.MinSamples,
		MaxSamples: o.MaxSamples,
		Seed:       o.Seed,
	}
	part := data.GenerateSynthetic(cfg)
	train, test := splitPartition(part, 0.75, o.Seed)
	return Task{
		Model: models.NewSoftmax(60, 10, o.L2),
		Part:  train,
		Test:  test,
		L:     estimateSoftmaxL(train),
	}
}

// ImageStyle selects the procedural image family.
type ImageStyle = data.ImageStyle

// Image styles.
const (
	// Digits is the MNIST substitute (stroke glyphs).
	Digits = data.StyleDigits
	// Fashion is the Fashion-MNIST substitute (garment silhouettes).
	Fashion = data.StyleFashion
)

// ImageOptions controls ImageTask.
type ImageOptions struct {
	Style           ImageStyle
	Devices         int // default 100 (convex experiments)
	SamplesPerClass int // total per class before the split; default 300
	LabelsPerDevice int // default 2 (paper)
	MinSamples      int // default 40
	MaxSamples      int // default 400
	L2              float64
	Seed            int64
}

// ImageTask builds a federated image-classification task on procedural
// 28×28 images with the paper's label-skew partition (2 labels/device,
// power-law sizes) and a multinomial logistic regression model. Use
// CNNTask for the non-convex counterpart.
func ImageTask(o ImageOptions) (Task, error) {
	o = imageDefaults(o)
	gen := data.NewImageGenerator(data.ImageConfig{Style: o.Style, Seed: o.Seed})
	full := gen.Generate(o.SamplesPerClass*10, 0)
	train, test := full.Split(0.75, o.Seed+1)
	part, err := data.PartitionByLabel(train, data.PartitionConfig{
		NumDevices:      o.Devices,
		LabelsPerDevice: o.LabelsPerDevice,
		MinSamples:      o.MinSamples,
		MaxSamples:      o.MaxSamples,
		Seed:            o.Seed + 2,
	})
	if err != nil {
		return Task{}, err
	}
	return Task{
		Model: models.NewSoftmax(data.ImageDim, 10, o.L2),
		Part:  part,
		Test:  test,
		L:     estimateSoftmaxL(part),
	}, nil
}

// CNNTask builds the paper's non-convex task: the two-layer CNN on
// procedural digit images, 10 devices (the paper reduces the device count
// for CNN cost reasons). widthDivisor > 1 thins the CNN for fast runs
// (1 = the paper's 32/64-channel network).
func CNNTask(o ImageOptions, widthDivisor int) (Task, error) {
	o = imageDefaults(o)
	if o.Devices == 0 || o.Devices > 10 {
		o.Devices = 10
	}
	gen := data.NewImageGenerator(data.ImageConfig{Style: o.Style, Seed: o.Seed})
	full := gen.Generate(o.SamplesPerClass*10, 0)
	train, test := full.Split(0.75, o.Seed+1)
	part, err := data.PartitionByLabel(train, data.PartitionConfig{
		NumDevices:      o.Devices,
		LabelsPerDevice: o.LabelsPerDevice,
		MinSamples:      o.MinSamples,
		MaxSamples:      o.MaxSamples,
		Seed:            o.Seed + 2,
	})
	if err != nil {
		return Task{}, err
	}
	m := models.NewPaperCNN(10, widthDivisor, o.L2)
	w0 := make([]float64, m.Dim())
	m.InitParams(randx.NewStream(o.Seed, 31), w0)
	return Task{
		Model: m,
		Part:  part,
		Test:  test,
		// NN smoothness has no closed form; this estimate is calibrated so
		// the paper's β ∈ [5, 10] maps to step sizes (0.05–0.1) where the
		// CNN trains stably (η ≥ 0.2 stalls it — see EXPERIMENTS.md).
		L:     2,
		InitW: w0,
	}, nil
}

func imageDefaults(o ImageOptions) ImageOptions {
	if o.Devices == 0 {
		o.Devices = 100
	}
	if o.SamplesPerClass == 0 {
		o.SamplesPerClass = 300
	}
	if o.LabelsPerDevice == 0 {
		o.LabelsPerDevice = 2
	}
	if o.MinSamples == 0 {
		o.MinSamples = 40
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 400
	}
	return o
}

// splitPartition holds out a fraction of every shard into one global test
// set, preserving per-device heterogeneity in the training shards.
func splitPartition(p *Partition, trainFrac float64, seed int64) (*Partition, *Dataset) {
	trainShards := make([]*data.Dataset, len(p.Clients))
	testParts := make([]*data.Dataset, 0, len(p.Clients))
	for i, shard := range p.Clients {
		tr, te := shard.Split(trainFrac, randx.DeriveSeed(seed, int64(i)+9000))
		trainShards[i] = tr
		if te.N() > 0 {
			testParts = append(testParts, te)
		}
	}
	var test *data.Dataset
	if len(testParts) > 0 {
		test = data.Merge(testParts...)
	}
	return &data.Partition{Clients: trainShards}, test
}

// estimateSoftmaxL estimates the smoothness constant of the softmax loss
// from the data. The cross-entropy Hessian at sample x is bounded by
// ½‖x‖²; the empirical loss averages over samples, so the mean second
// moment is the effective constant (the worst-case max makes η = 1/(βL)
// uselessly small on heavy-tailed features — the paper, like practice,
// "estimates by sampling the real-world dataset").
func estimateSoftmaxL(p *Partition) float64 {
	var sumSq float64
	var n int
	for _, shard := range p.Clients {
		for i := 0; i < shard.N(); i++ {
			x := shard.Sample(i)
			var s float64
			for _, v := range x {
				s += v * v
			}
			sumSq += s
			n++
		}
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sumSq / float64(n) / 2
}
