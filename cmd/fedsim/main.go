// Command fedsim runs one federated training experiment in-process and
// emits the per-round metric series as CSV (stdout or a file).
//
// Examples:
//
//	fedsim -dataset synthetic -alg sarah -beta 5 -tau 20 -mu 0.1 -rounds 100
//	fedsim -dataset fashion -alg fedavg -beta 10 -tau 10 -batch 16 -csv out.csv
//	fedsim -dataset digits -model cnn -alg svrg -beta 7 -tau 20 -batch 64
//	fedsim -rounds 500 -checkpoint run.ckpt            # Ctrl-C safe, resumable
//	fedsim -secure -alg sarah -rounds 100              # masked aggregation
//	fedsim -trace run.jsonl -phases                    # per-round system trace
//	fedsim -trace-spans run.trace.json                 # Perfetto/chrome://tracing timeline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	fedproxvr "fedproxvr"
	"fedproxvr/internal/chaos"
	"fedproxvr/internal/checkpoint"
	"fedproxvr/internal/clisetup"
	"fedproxvr/internal/metrics"
	"fedproxvr/internal/obs"
	"fedproxvr/internal/telemetry"
	"fedproxvr/internal/trace"
	"fedproxvr/internal/transport"
)

func main() {
	var (
		dataset   = flag.String("dataset", "synthetic", "synthetic | digits | fashion")
		model     = flag.String("model", "softmax", "softmax | cnn (cnn only with image datasets)")
		alg       = flag.String("alg", "sarah", "fedavg | fedprox | svrg | sarah")
		beta      = flag.Float64("beta", 5, "step-size parameter β (η = 1/(βL))")
		tau       = flag.Int("tau", 20, "local iterations τ")
		mu        = flag.Float64("mu", 0.1, "proximal penalty μ")
		batch     = flag.Int("batch", 32, "mini-batch size B")
		rounds    = flag.Int("rounds", 100, "global iterations T")
		devices   = flag.Int("devices", 0, "device count (0 = paper default)")
		samples   = flag.Int("samples", 300, "image samples per class (image datasets)")
		widthDiv  = flag.Int("cnn-width-div", 4, "CNN channel divisor (1 = paper width)")
		seed      = flag.Int64("seed", 2020, "experiment seed")
		parallel  = flag.Bool("parallel", true, "run devices on all cores")
		evalEvery = flag.Int("eval-every", 1, "evaluate metrics every k rounds")
		station   = flag.Bool("stationarity", false, "track ‖∇F̄‖² (extra full pass per eval)")
		fraction  = flag.Float64("fraction", 1, "fraction of devices sampled per round")
		dropout   = flag.Float64("dropout", 0, "per-round device failure probability")
		secure    = flag.Bool("secure", false, "aggregate through pairwise additive masking")
		ckptPath  = flag.String("checkpoint", "", "snapshot path; resumes if it exists")
		ckptEvery = flag.Int("checkpoint-every", 5, "snapshot every k rounds")
		csvPath   = flag.String("csv", "", "write series CSV to this path (default stdout)")
		tracePath = flag.String("trace", "", "write one JSONL system record per round to this path")
		phases    = flag.Bool("phases", false, "print the end-of-run phase-breakdown table to stderr")
		deadline  = flag.Duration("round-deadline", 0, "cut each round after this wall-clock budget (0 = wait for everyone)")
		minReport = flag.Int("min-report", 0, "cut each round once this many devices reported (0 = wait for everyone)")
		chaosPath = flag.String("chaos", "", "inject faults from this JSON schedule (see internal/chaos)")
		spansPath = flag.String("trace-spans", "", "write a Chrome trace-event JSON (open in Perfetto) to this path")
		spanLog   = flag.String("span-log", "", "write the span trace as JSONL to this path")
		codecStr  = flag.String("codec", "", "report wire-byte estimates for this codec (float64|float32|int16|int8|topk-delta); the in-process run itself is exact")
		topkFrac  = flag.Float64("topk-frac", transport.DefaultTopKFraction, "fraction of delta coordinates kept under -codec topk-delta")
		actProb   = flag.Float64("activate-prob", 0, "per-device per-round activation probability (0 = deterministic selection via -fraction)")
		telEvents = flag.String("telemetry-events", "", "append convergence alert events (loss_rising, nan_inf, …) as JSONL to this path")
	)
	flag.Parse()
	// Inverted comparisons so NaN is rejected too.
	if !(*fraction > 0 && *fraction <= 1) {
		fatal(fmt.Errorf("-fraction must be in (0,1], got %v", *fraction))
	}
	if !(*topkFrac > 0 && *topkFrac <= 1) {
		fatal(fmt.Errorf("-topk-frac must be in (0,1], got %v", *topkFrac))
	}
	if !(*actProb >= 0 && *actProb <= 1) {
		fatal(fmt.Errorf("-activate-prob must be in [0,1], got %v", *actProb))
	}

	task, err := clisetup.Task(*dataset, *model, *devices, *samples, *widthDiv, *seed)
	if err != nil {
		fatal(err)
	}
	cfg, err := clisetup.Config(*alg, *beta, task.L, *mu, *tau, *batch, *rounds)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.EvalEvery = *evalEvery
	cfg.TrackStationarity = *station
	cfg.ClientFraction = *fraction
	cfg.DropoutProb = *dropout
	cfg.SecureAgg = *secure
	cfg.RoundDeadline = *deadline
	cfg.MinReport = *minReport
	cfg.ActivateProb = *actProb

	// Ctrl-C cancels between rounds; with -checkpoint the run is resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r, err := fedproxvr.NewRunner(task, cfg)
	if err != nil {
		fatal(err)
	}

	// Chaos injection wraps the executor before stats are enabled so the
	// decorator inherits the engine's observability toggles.
	if *chaosPath != "" {
		sched, err := chaos.Load(*chaosPath)
		if err != nil {
			fatal(err)
		}
		eng := r.Engine()
		eng.SetExecutor(chaos.NewExecutor(eng.Executor(), sched))
	}

	// Observability is opt-in: without -trace/-phases the engine takes no
	// timing samples and the run is byte-for-byte the historical one.
	var sinks []obs.Sink
	var summary *obs.Summary
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sinks = append(sinks, obs.NewJSONL(f))
	}
	if *phases {
		summary = &obs.Summary{}
		sinks = append(sinks, summary)
	}
	// Convergence telemetry: a per-run store ingests round stats through the
	// same sink fan-out, a probe on the aggregator adds drift/variance
	// diagnostics, and rule transitions append durably to the JSONL path.
	var telStore *telemetry.JobStore
	if *telEvents != "" {
		hub := telemetry.NewHub(telemetry.Options{})
		telStore = hub.Job(cfg.Name)
		telStore.SetTarget(*rounds)
		f, err := os.OpenFile(*telEvents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		telStore.SetEventLog(f)
		sinks = append(sinks, telStore)
		telemetry.Attach(r.Engine(), telStore)
	}
	var collector *obs.Collector
	if len(sinks) > 0 {
		collector = obs.NewCollector(sinks...)
		r.Engine().SetStats(collector)
	}

	// Span tracing is likewise opt-in; the tracer is exported after the run
	// (partial runs still produce a valid trace file).
	var tracer *trace.Tracer
	if *spansPath != "" || *spanLog != "" {
		tracer = trace.New("fedsim")
		r.Engine().SetTracer(tracer)
	}

	var series *metrics.Series
	if *ckptPath != "" {
		series, err = checkpoint.TrainContext(ctx, r, *ckptPath, *ckptEvery)
		if err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: interrupted; resume with -checkpoint %s\n", *ckptPath)
		}
	} else {
		series, err = r.RunContext(ctx)
		if err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "fedsim: interrupted; emitting partial series")
		}
	}
	if collector != nil {
		if err := collector.Close(); err != nil {
			fatal(err)
		}
	}
	if tracer != nil {
		if err := exportTrace(tracer, *spansPath, *spanLog); err != nil {
			fatal(err)
		}
	}

	out := os.Stdout
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := series.WriteCSV(out); err != nil {
		fatal(err)
	}
	last, _ := series.Last()
	fmt.Fprintf(os.Stderr, "%s: final loss %.4f, test acc %.2f%% after %d rounds\n",
		cfg.Name, last.TrainLoss, last.TestAcc*100, last.Round)
	if failed := series.TotalFailed(); failed > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d device report failures across the run; last round aggregated %d participants\n",
			cfg.Name, failed, last.Participants)
	}
	if telStore != nil {
		if active, _ := telStore.Health(); len(active) > 0 {
			fmt.Fprintf(os.Stderr, "%s: ALERT still firing at end of run: %s (events in %s)\n",
				cfg.Name, strings.Join(active, ","), *telEvents)
		}
	}
	if summary != nil {
		fmt.Fprintln(os.Stderr)
		if err := summary.WriteTable(os.Stderr); err != nil {
			fatal(err)
		}
	}

	// -codec prints what the distributed runtime would move per round for
	// this model under the framed wire (exact closed-form sizes) next to
	// the legacy gob float64 baseline. The in-process run above is always
	// exact — this is the planning estimate for fedserver/fedclient runs.
	if *codecStr != "" {
		codec, err := transport.ParseCodec(*codecStr)
		if err != nil {
			fatal(err)
		}
		dim := task.Model.Dim()
		topK := transport.TopKFor(*topkFrac, dim)
		framed := transport.RoundWireSize(codec, dim, topK, false)
		gob := transport.GobRoundWireSize(transport.CodecFloat64, dim, false)
		fmt.Fprintf(os.Stderr, "%s: wire estimate at dim %d: %d bytes/round/device with codec %v vs %d gob float64 baseline (%.1fx smaller)\n",
			cfg.Name, dim, framed, codec, gob, float64(gob)/float64(framed))
	}
}

// exportTrace writes the collected spans in the requested formats.
func exportTrace(tr *trace.Tracer, chromePath, jsonlPath string) error {
	write := func(path string, export func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(chromePath, func(f *os.File) error { return tr.WriteChrome(f) }); err != nil {
		return err
	}
	return write(jsonlPath, func(f *os.File) error { return tr.WriteJSONL(f) })
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsim:", err)
	os.Exit(1)
}
