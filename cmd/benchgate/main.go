// Command benchgate compares a fresh `go test -bench` run against the
// committed benchmark snapshot (the JSONL written by benchjson) and fails
// when performance regresses: any benchmark more than -tolerance slower
// than its recorded ns/op, any benchmark exceeding its recorded allocs/op
// budget, or any recorded benchmark missing from the fresh run.
//
//	go test -run '^$' -bench . -benchmem ./... | benchgate -baseline BENCH_engine.json
//
// Benchmarks present in the fresh run but absent from the baseline are
// reported and ignored — new benchmarks enter the budget when the snapshot
// is regenerated with `make bench`. Names are normalized by stripping the
// trailing -GOMAXPROCS suffix so runs from machines with different core
// counts compare against the same baseline entries.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark measurement. The JSON tags match the
// records benchjson writes, so the baseline file decodes directly into it.
type result struct {
	Name        string   `json:"name"`
	NsPerOp     *float64 `json:"ns_per_op"`
	AllocsPerOp *int64   `json:"allocs_per_op"`
}

func main() {
	baseline := flag.String("baseline", "", "benchjson JSONL snapshot to compare against (required)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op slowdown before failing")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}

	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	fresh, err := parseRun(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(1)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Printf("%-38s %12s %12s %8s  %s\n", "benchmark", "base ns/op", "fresh ns/op", "delta", "allocs")
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh run", name))
			fmt.Printf("%-38s %12s %12s %8s  MISSING\n", name, fmtNs(b.NsPerOp), "-", "-")
			continue
		}
		status := "ok"
		delta := "-"
		if b.NsPerOp != nil && f.NsPerOp != nil {
			d := (*f.NsPerOp - *b.NsPerOp) / *b.NsPerOp
			delta = fmt.Sprintf("%+.1f%%", 100*d)
			if d > *tolerance {
				failures = append(failures, fmt.Sprintf("%s: %s slower than baseline (%.0f → %.0f ns/op, tolerance %.0f%%)",
					name, delta, *b.NsPerOp, *f.NsPerOp, 100**tolerance))
				status = "SLOW"
			}
		}
		allocs := "-"
		if b.AllocsPerOp != nil && f.AllocsPerOp != nil {
			allocs = fmt.Sprintf("%d/%d", *b.AllocsPerOp, *f.AllocsPerOp)
			if *f.AllocsPerOp > *b.AllocsPerOp {
				failures = append(failures, fmt.Sprintf("%s: allocs/op grew %d → %d", name, *b.AllocsPerOp, *f.AllocsPerOp))
				status = "ALLOCS"
			}
		}
		fmt.Printf("%-38s %12s %12s %8s  %s %s\n", name, fmtNs(b.NsPerOp), fmtNs(f.NsPerOp), delta, allocs, status)
	}
	for name := range fresh {
		if _, ok := base[name]; !ok {
			fmt.Printf("%-38s (not in baseline, ignored)\n", name)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: %d benchmarks within budget (tolerance %.0f%%)\n", len(base), 100**tolerance)
}

func fmtNs(v *float64) string {
	if v == nil {
		return "-"
	}
	return strconv.FormatFloat(*v, 'f', 0, 64)
}

// normalize strips the -GOMAXPROCS suffix go test appends to benchmark
// names when GOMAXPROCS > 1.
func normalize(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// loadBaseline reads a benchjson JSONL snapshot, keeping only records that
// carry a benchmark name. Repeated samples of one benchmark (a snapshot
// taken with `-count=N`) collapse to the maximum ns/op and allocs/op: the
// committed budget is the slowest sample a healthy build produced.
func loadBaseline(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var r result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if r.Name == "" {
			continue
		}
		name := normalize(r.Name)
		r.Name = name
		if prev, ok := out[name]; ok {
			if r.NsPerOp == nil || (prev.NsPerOp != nil && *prev.NsPerOp > *r.NsPerOp) {
				r.NsPerOp = prev.NsPerOp
			}
			if r.AllocsPerOp == nil || (prev.AllocsPerOp != nil && *prev.AllocsPerOp > *r.AllocsPerOp) {
				r.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark records", path)
	}
	return out, nil
}

// parseRun parses `go test -bench` text output from r, echoing nothing.
// The measurement grammar matches cmd/benchjson. Repeated measurements of
// one benchmark (`-count=N`) collapse to the minimum ns/op — the least
// noise-contaminated sample — and the maximum allocs/op.
func parseRun(r *os.File) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // a Benchmark line without a count column (e.g. SKIP)
		}
		res := result{Name: normalize(fields[0])}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					res.NsPerOp = &v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					res.AllocsPerOp = &v
				}
			}
		}
		if prev, ok := out[res.Name]; ok {
			if res.NsPerOp == nil || (prev.NsPerOp != nil && *prev.NsPerOp < *res.NsPerOp) {
				res.NsPerOp = prev.NsPerOp
			}
			if res.AllocsPerOp == nil || (prev.AllocsPerOp != nil && *prev.AllocsPerOp > *res.AllocsPerOp) {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[res.Name] = res
	}
	return out, sc.Err()
}
