// Command paramopt regenerates Figure 1: it sweeps the weight factor
// γ = d_cmp/d_com and, for each γ and heterogeneity level σ̄², numerically
// solves the Section 4.3 training-time minimization (problem 23) over
// (β, μ), printing the optimal β, μ, θ, τ, Θ and objective.
//
// Example:
//
//	paramopt -l 1 -lambda 0.5 -sigma2 0.5,1,2 -gamma-lo 1e-4 -gamma-hi 1e-1 -points 13
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fedproxvr/internal/metrics"
	"fedproxvr/internal/theory"
)

func main() {
	var (
		l       = flag.Float64("l", 1, "smoothness constant L")
		lambda  = flag.Float64("lambda", 0.5, "bounded non-convexity λ")
		sigmas  = flag.String("sigma2", "0.5,1,2", "comma-separated σ̄² levels")
		gammaLo = flag.Float64("gamma-lo", 1e-4, "smallest γ")
		gammaHi = flag.Float64("gamma-hi", 1e-1, "largest γ")
		points  = flag.Int("points", 13, "number of γ points (log-spaced)")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	sigma2s, err := parseFloats(*sigmas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paramopt:", err)
		os.Exit(1)
	}
	gammas := theory.LogSpace(*gammaLo, *gammaHi, *points)

	if *csv {
		fmt.Println("sigma2,gamma,beta,mu,theta,tau,fed_factor,objective,feasible")
	}
	var rows [][]string
	for _, s2 := range sigma2s {
		p := theory.Problem{L: *l, Lambda: *lambda, SigmaBar2: s2}
		if err := p.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "paramopt:", err)
			os.Exit(1)
		}
		for _, opt := range p.SweepGamma(gammas) {
			if *csv {
				fmt.Printf("%g,%g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%t\n",
					s2, opt.Gamma, opt.Beta, opt.Mu, opt.Theta, opt.Tau,
					opt.Fed, opt.Objective, opt.Feasible)
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%g", s2),
				fmt.Sprintf("%.3g", opt.Gamma),
				fmt.Sprintf("%.4g", opt.Beta),
				fmt.Sprintf("%.4g", opt.Mu),
				fmt.Sprintf("%.4g", opt.Theta),
				fmt.Sprintf("%.1f", opt.Tau),
				fmt.Sprintf("%.4g", opt.Fed),
				fmt.Sprintf("%.4g", opt.Objective),
			})
		}
	}
	if !*csv {
		headers := []string{"σ̄²", "γ", "β*", "μ*", "θ", "τ", "Θ", "objective"}
		if err := metrics.Table(os.Stdout, headers, rows); err != nil {
			fmt.Fprintln(os.Stderr, "paramopt:", err)
			os.Exit(1)
		}
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
