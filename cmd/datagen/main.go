// Command datagen generates the procedural datasets, prints heterogeneity
// statistics, and optionally exports image corpora in MNIST's IDX format.
//
// Examples:
//
//	datagen -dataset synthetic -devices 100 -stats
//	datagen -dataset digits -samples 600 -idx-out ./digits
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fedproxvr/internal/data"
	"fedproxvr/internal/metrics"
)

func main() {
	var (
		dataset = flag.String("dataset", "synthetic", "synthetic | digits | fashion")
		devices = flag.Int("devices", 100, "device count (synthetic/partition stats)")
		samples = flag.Int("samples", 300, "image samples per class")
		alpha   = flag.Float64("alpha", 1, "synthetic model heterogeneity α")
		beta    = flag.Float64("beta", 1, "synthetic feature heterogeneity β")
		seed    = flag.Int64("seed", 2020, "generation seed")
		stats   = flag.Bool("stats", true, "print per-device statistics")
		idxOut  = flag.String("idx-out", "", "write <prefix>-images.idx / <prefix>-labels.idx (image datasets)")
	)
	flag.Parse()

	switch *dataset {
	case "synthetic":
		part := data.GenerateSynthetic(data.SyntheticConfig{
			NumDevices: *devices, Dim: 60, NumClasses: 10,
			Alpha: *alpha, Beta: *beta,
			MinSamples: 37, MaxSamples: 3277, Seed: *seed,
		})
		if *stats {
			printPartitionStats(part)
		}
	case "digits", "fashion":
		style := data.StyleDigits
		if *dataset == "fashion" {
			style = data.StyleFashion
		}
		gen := data.NewImageGenerator(data.ImageConfig{Style: style, Seed: *seed})
		ds := gen.Generate(*samples*10, 0)
		fmt.Printf("%s: %d samples, %d classes, dim %d\n", *dataset, ds.N(), ds.NumClasses, ds.Dim)
		if *idxOut != "" {
			img := *idxOut + "-images.idx"
			lbl := *idxOut + "-labels.idx"
			if err := data.WriteIDX(ds, img, lbl); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s and %s\n", img, lbl)
		}
		if *stats {
			part, err := data.PartitionByLabel(ds, data.PartitionConfig{
				NumDevices: *devices, LabelsPerDevice: 2,
				MinSamples: 40, MaxSamples: 400, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			printPartitionStats(part)
		}
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
}

func printPartitionStats(p *data.Partition) {
	sizes := make([]int, len(p.Clients))
	for i, c := range p.Clients {
		sizes[i] = c.N()
	}
	sort.Ints(sizes)
	min, max := p.SizeRange()
	fmt.Printf("devices: %d, total samples: %d, sizes [%d, %d], median %d\n",
		len(p.Clients), p.TotalSamples(), min, max, sizes[len(sizes)/2])
	rows := make([][]string, 0, 10)
	show := len(p.Clients)
	if show > 10 {
		show = 10
	}
	for i := 0; i < show; i++ {
		labels := data.DistinctLabels(p.Clients[i])
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", p.Clients[i].N()),
			fmt.Sprintf("%v", labels),
		})
	}
	if err := metrics.Table(os.Stdout, []string{"device", "samples", "labels"}, rows); err != nil {
		fatal(err)
	}
	if len(p.Clients) > show {
		fmt.Printf("… and %d more devices\n", len(p.Clients)-show)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
