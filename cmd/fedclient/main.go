// Command fedclient is one device of the distributed runtime: it
// regenerates its data shard deterministically from the shared seed,
// connects to a fedserver, and serves local-solve rounds until told to
// stop. Start it with the same dataset flags and seed as the server.
//
// Example:
//
//	fedclient -addr localhost:7070 -id 0 -devices 3 -dataset synthetic
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedproxvr/internal/chaos"
	"fedproxvr/internal/clisetup"
	"fedproxvr/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7070", "server address")
		id        = flag.Int("id", 0, "this device's id in [0, devices)")
		devices   = flag.Int("devices", 3, "total device count (must match the server)")
		dataset   = flag.String("dataset", "synthetic", "synthetic | digits | fashion")
		samples   = flag.Int("samples", 120, "image samples per class (image datasets)")
		seed      = flag.Int64("seed", 2020, "shared experiment seed")
		chaosPath = flag.String("chaos", "", "inject faults from this JSON schedule (see internal/chaos)")
		rejoin    = flag.Int("rejoin", -1, "re-dial attempts after losing the server (-1 = default: 0, or 40 with -chaos)")
		rejoinGap = flag.Duration("rejoin-backoff", 25*time.Millisecond, "pause between re-dial attempts")
		spans     = flag.Bool("trace-spans", false, "record solve spans and ship them to a tracing server")
		codecStr  = flag.String("codec", "", "pin the reply codec (float64|float32|int16|int8|topk-delta); default: follow the server's round requests. A pin that disagrees with the server is rejected per round, not silently dequantized")
		gobWire   = flag.Bool("gob-wire", false, "speak the legacy gob protocol instead of the framed wire (compatibility/baseline runs)")
		fanout    = flag.Int("tree-fanout", 0, "run as aggregation-tree shard node #id of this many (0 = plain single-device worker); must match the server's -tree-fanout")
		virtDev   = flag.Int("virtual-devices", 0, "total virtual devices across the tree (must match the server's -virtual-devices)")
		jobID     = flag.String("job", "", "lease this worker to one job ID (must match the server's -job)")
		epoch     = flag.Int64("lease-epoch", 0, "lease epoch presented in the handshake; a stale epoch is rejected and the worker adopts the server's current lease before rejoining")
	)
	flag.Parse()

	if *fanout > 0 {
		runTreeNode(*addr, *id, *fanout, *virtDev, *dataset, *samples, *seed,
			*chaosPath, *rejoin, *rejoinGap, *spans, *codecStr, *gobWire)
		return
	}
	if *virtDev > 0 {
		fatal(fmt.Errorf("-virtual-devices needs -tree-fanout"))
	}
	if *id < 0 || *id >= *devices {
		fatal(fmt.Errorf("id %d outside [0,%d)", *id, *devices))
	}
	task, err := clisetup.Task(*dataset, "softmax", *devices, *samples, 1, *seed)
	if err != nil {
		fatal(err)
	}
	shard := task.Part.Clients[*id]
	fmt.Printf("fedclient %d: shard of %d samples, dialing %s\n", *id, shard.N(), *addr)

	var worker *transport.Worker
	switch {
	case *jobID != "":
		if *gobWire {
			fatal(fmt.Errorf("-job leases run on the framed wire; drop -gob-wire"))
		}
		if *chaosPath != "" {
			fatal(fmt.Errorf("-job and -chaos are mutually exclusive"))
		}
		worker, err = transport.NewLeasedWorker(*addr, *id, shard, task.Model, *seed, *jobID, *epoch)
		if err != nil {
			fatal(err)
		}
	case *chaosPath != "":
		if *gobWire {
			fatal(fmt.Errorf("-chaos runs on the framed wire; drop -gob-wire"))
		}
		sched, err := chaos.Load(*chaosPath)
		if err != nil {
			fatal(err)
		}
		worker, err = transport.NewChaosWorker(*addr, *id, shard, task.Model, *seed, sched)
		if err != nil {
			fatal(err)
		}
	case *gobWire:
		worker, err = transport.NewGobWorker(*addr, *id, shard, task.Model, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		worker, err = transport.NewWorker(*addr, *id, shard, task.Model, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if *codecStr != "" {
		codec, err := transport.ParseCodec(*codecStr)
		if err != nil {
			fatal(err)
		}
		worker.ForceCodec(codec)
	}
	if *rejoin >= 0 {
		worker.SetRejoin(*rejoin, *rejoinGap)
	}
	if *spans {
		worker.EnableTrace()
	}
	if err := worker.Serve(); err != nil {
		fatal(err)
	}
	fmt.Printf("fedclient %d: done\n", *id)
}

// runTreeNode runs the process as aggregation-tree shard node #id: it
// regenerates the full virtual-device partition deterministically, keeps the
// contiguous slice [id·M/N, (id+1)·M/N), and streams one weighted partial
// sum per round to the tree coordinator.
func runTreeNode(addr string, id, fanout, virtDev int, dataset string, samples int, seed int64,
	chaosPath string, rejoin int, rejoinGap time.Duration, spans bool, codecStr string, gobWire bool) {
	if id < 0 || id >= fanout {
		fatal(fmt.Errorf("id %d outside [0,%d)", id, fanout))
	}
	if virtDev < fanout {
		fatal(fmt.Errorf("-virtual-devices (%d) must be >= -tree-fanout (%d)", virtDev, fanout))
	}
	if gobWire {
		fatal(fmt.Errorf("the aggregation tree runs on the framed wire; drop -gob-wire"))
	}
	if codecStr != "" && codecStr != "float64" {
		fatal(fmt.Errorf("the aggregation tree is float64-only; drop -codec %s", codecStr))
	}
	task, err := clisetup.Task(dataset, "softmax", virtDev, samples, 1, seed)
	if err != nil {
		fatal(err)
	}
	lo, hi := id*virtDev/fanout, (id+1)*virtDev/fanout
	shards := task.Part.Clients[lo:hi]
	fmt.Printf("fedclient %d: tree shard of %d virtual devices [%d,%d), dialing %s\n", id, hi-lo, lo, hi, addr)

	var node *transport.AggregatorNode
	if chaosPath != "" {
		sched, err := chaos.Load(chaosPath)
		if err != nil {
			fatal(err)
		}
		node, err = transport.NewChaosAggregatorNode(addr, id, lo, shards, task.Model, seed, sched)
		if err != nil {
			fatal(err)
		}
	} else {
		node, err = transport.NewAggregatorNode(addr, id, lo, shards, task.Model, seed)
		if err != nil {
			fatal(err)
		}
	}
	if rejoin >= 0 {
		node.SetRejoin(rejoin, rejoinGap)
	}
	if spans {
		node.EnableTrace()
	}
	if err := node.Serve(); err != nil {
		fatal(err)
	}
	fmt.Printf("fedclient %d: done\n", id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedclient:", err)
	os.Exit(1)
}
