// Command fedclient is one device of the distributed runtime: it
// regenerates its data shard deterministically from the shared seed,
// connects to a fedserver, and serves local-solve rounds until told to
// stop. Start it with the same dataset flags and seed as the server.
//
// Example:
//
//	fedclient -addr localhost:7070 -id 0 -devices 3 -dataset synthetic
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedproxvr/internal/chaos"
	"fedproxvr/internal/clisetup"
	"fedproxvr/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7070", "server address")
		id        = flag.Int("id", 0, "this device's id in [0, devices)")
		devices   = flag.Int("devices", 3, "total device count (must match the server)")
		dataset   = flag.String("dataset", "synthetic", "synthetic | digits | fashion")
		samples   = flag.Int("samples", 120, "image samples per class (image datasets)")
		seed      = flag.Int64("seed", 2020, "shared experiment seed")
		chaosPath = flag.String("chaos", "", "inject faults from this JSON schedule (see internal/chaos)")
		rejoin    = flag.Int("rejoin", -1, "re-dial attempts after losing the server (-1 = default: 0, or 40 with -chaos)")
		rejoinGap = flag.Duration("rejoin-backoff", 25*time.Millisecond, "pause between re-dial attempts")
		spans     = flag.Bool("trace-spans", false, "record solve spans and ship them to a tracing server")
		codecStr  = flag.String("codec", "", "pin the reply codec (float64|float32|int16|int8|topk-delta); default: follow the server's round requests. A pin that disagrees with the server is rejected per round, not silently dequantized")
		gobWire   = flag.Bool("gob-wire", false, "speak the legacy gob protocol instead of the framed wire (compatibility/baseline runs)")
	)
	flag.Parse()

	if *id < 0 || *id >= *devices {
		fatal(fmt.Errorf("id %d outside [0,%d)", *id, *devices))
	}
	task, err := clisetup.Task(*dataset, "softmax", *devices, *samples, 1, *seed)
	if err != nil {
		fatal(err)
	}
	shard := task.Part.Clients[*id]
	fmt.Printf("fedclient %d: shard of %d samples, dialing %s\n", *id, shard.N(), *addr)

	var worker *transport.Worker
	switch {
	case *chaosPath != "":
		if *gobWire {
			fatal(fmt.Errorf("-chaos runs on the framed wire; drop -gob-wire"))
		}
		sched, err := chaos.Load(*chaosPath)
		if err != nil {
			fatal(err)
		}
		worker, err = transport.NewChaosWorker(*addr, *id, shard, task.Model, *seed, sched)
		if err != nil {
			fatal(err)
		}
	case *gobWire:
		worker, err = transport.NewGobWorker(*addr, *id, shard, task.Model, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		worker, err = transport.NewWorker(*addr, *id, shard, task.Model, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if *codecStr != "" {
		codec, err := transport.ParseCodec(*codecStr)
		if err != nil {
			fatal(err)
		}
		worker.ForceCodec(codec)
	}
	if *rejoin >= 0 {
		worker.SetRejoin(*rejoin, *rejoinGap)
	}
	if *spans {
		worker.EnableTrace()
	}
	if err := worker.Serve(); err != nil {
		fatal(err)
	}
	fmt.Printf("fedclient %d: done\n", *id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedclient:", err)
	os.Exit(1)
}
