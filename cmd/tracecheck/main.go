// Command tracecheck validates a Chrome trace-event JSON file produced by
// -trace-spans (internal/trace.WriteChrome): it must parse, every complete
// ("X") event must carry a span id and a non-negative duration, and every
// non-zero parent_id must refer to a span present in the file. It is the CI
// guard behind `make trace-demo`, keeping the export format loadable by
// Perfetto/chrome://tracing.
//
// Usage:
//
//	tracecheck [-min-spans n] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type event struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	Args  struct {
		SpanID   uint64 `json:"span_id"`
		ParentID uint64 `json:"parent_id"`
	} `json:"args"`
}

type traceFile struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	minSpans := flag.Int("min-spans", 1, "fail unless the file holds at least this many spans")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-spans n] trace.json")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fatal(fmt.Errorf("%s: not valid trace JSON: %w", flag.Arg(0), err))
	}

	ids := make(map[uint64]bool)
	var spans, instants, metas int
	for _, ev := range tf.TraceEvents {
		if ev.Phase == "X" {
			ids[ev.Args.SpanID] = true
		}
	}
	for i, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "X":
			spans++
			if ev.Name == "" || ev.Args.SpanID == 0 {
				fatal(fmt.Errorf("event %d: complete event without name/span_id: %+v", i, ev))
			}
			if ev.Dur < 0 {
				fatal(fmt.Errorf("event %d (%s): negative duration %g", i, ev.Name, ev.Dur))
			}
			if p := ev.Args.ParentID; p != 0 && !ids[p] {
				fatal(fmt.Errorf("event %d (%s): parent_id %d not in file", i, ev.Name, p))
			}
		case "i":
			instants++
		case "M":
			metas++
		default:
			fatal(fmt.Errorf("event %d: unknown phase %q", i, ev.Phase))
		}
	}
	if spans < *minSpans {
		fatal(fmt.Errorf("%s: %d spans, want at least %d", flag.Arg(0), spans, *minSpans))
	}
	fmt.Printf("tracecheck: %s ok — %d spans, %d events, %d metadata records\n",
		flag.Arg(0), spans, instants, metas)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
