// Command benchjson converts `go test -bench` text output into JSONL while
// echoing the original text to stdout unchanged. Each output record retains
// the raw line, so the benchstat-compatible text stream can be reconstructed
// from the JSON file:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH.json
//	jq -r .line BENCH.json | benchstat /dev/stdin
//
// Benchmark result lines additionally get parsed fields (name, iterations,
// ns/op, B/op, allocs/op); context lines (goos, goarch, pkg, cpu) and
// PASS/ok trailers are kept as raw lines only, preserving everything
// benchstat needs to group results.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one line of benchmark output. Parsed fields are present only on
// Benchmark result lines.
type record struct {
	Line        string   `json:"line"`
	Name        string   `json:"name,omitempty"`
	Iterations  int64    `json:"iterations,omitempty"`
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("out", "", "write JSONL records to this path (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	stdout := bufio.NewWriter(os.Stdout)
	for in.Scan() {
		line := in.Text()
		fmt.Fprintln(stdout, line)
		rec := parseLine(line)
		if rec == nil {
			continue
		}
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	stdout.Flush()
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine classifies one line of `go test -bench` output. Blank lines are
// dropped; context and trailer lines become raw records; Benchmark result
// lines get parsed measurement fields.
func parseLine(line string) *record {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" {
		return nil
	}
	rec := &record{Line: line}
	if !strings.HasPrefix(trimmed, "Benchmark") {
		return rec
	}
	// BenchmarkName-8   1234   987.6 ns/op   16 B/op   1 allocs/op
	fields := strings.Fields(trimmed)
	if len(fields) < 2 {
		return rec
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return rec // a Benchmark line without a count column (e.g. SKIP)
	}
	rec.Name = fields[0]
	rec.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				rec.NsPerOp = &v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				rec.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				rec.AllocsPerOp = &v
			}
		}
	}
	return rec
}
