// Command fedserver is the coordinator of the distributed runtime: it
// waits for -devices workers (cmd/fedclient) to connect over TCP, then
// drives federated rounds and prints per-round metrics.
//
// Server and clients must be started with the same dataset flags and seed
// so that every client regenerates its own shard deterministically (a real
// deployment would read local data instead; the generator stands in for
// it — see DESIGN.md).
//
// Example (one server, three clients):
//
//	fedserver -addr :7070 -devices 3 -dataset synthetic -rounds 50 &
//	for i in 0 1 2; do fedclient -addr localhost:7070 -id $i -devices 3 -dataset synthetic & done
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fedproxvr/internal/clisetup"
	"fedproxvr/internal/engine"
	"fedproxvr/internal/jobs"
	"fedproxvr/internal/obs"
	"fedproxvr/internal/telemetry"
	"fedproxvr/internal/trace"
	"fedproxvr/internal/transport"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		devices    = flag.Int("devices", 3, "number of workers to wait for")
		dataset    = flag.String("dataset", "synthetic", "synthetic | digits | fashion")
		samples    = flag.Int("samples", 120, "image samples per class (image datasets)")
		alg        = flag.String("alg", "sarah", "fedavg | fedprox | svrg | sarah")
		beta       = flag.Float64("beta", 5, "step-size parameter β")
		tau        = flag.Int("tau", 20, "local iterations τ")
		mu         = flag.Float64("mu", 0.1, "proximal penalty μ")
		batch      = flag.Int("batch", 16, "mini-batch size B")
		rounds     = flag.Int("rounds", 50, "global iterations T")
		fraction   = flag.Float64("fraction", 1, "fraction of workers contacted per round")
		dropout    = flag.Float64("dropout", 0, "per-round simulated report-failure probability")
		seed       = flag.Int64("seed", 2020, "shared experiment seed")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-message network timeout")
		retries    = flag.Int("retries", 1, "per-round retries for a worker's application-level failure")
		backoff    = flag.Duration("retry-backoff", 50*time.Millisecond, "pause before each retry")
		quorum     = flag.Int("quorum", 1, "minimum workers that must report, or the round is skipped")
		maxSkip    = flag.Int("max-failed-rounds", 3, "consecutive sub-quorum rounds tolerated before aborting")
		admin      = flag.String("admin", "", "HTTP admin address serving /metrics, /healthz, /buildz, /debug/pprof/ (empty = off)")
		staleAft   = flag.Duration("health-stale-after", 0, "/healthz reports stale (503) this long after the last round (0 = off)")
		tracePth   = flag.String("trace", "", "write one JSONL system record per round to this path")
		spansPth   = flag.String("trace-spans", "", "write a Chrome trace-event JSON (open in Perfetto) to this path")
		spanLog    = flag.String("span-log", "", "write the span trace as JSONL to this path")
		deadline   = flag.Duration("round-deadline", 0, "cut each round after this wall-clock budget (0 = wait for everyone)")
		minRep     = flag.Int("min-report", 0, "cut each round once this many workers reported (0 = wait for everyone)")
		codecStr   = flag.String("codec", "float64", "wire codec: float64 | float32 | int16 | int8 | topk-delta")
		topkFrac   = flag.Float64("topk-frac", transport.DefaultTopKFraction, "fraction of delta coordinates kept per round under -codec topk-delta")
		fanout     = flag.Int("tree-fanout", 0, "run an aggregation tree over this many shard nodes instead of flat workers (0 = flat)")
		virtDev    = flag.Int("virtual-devices", 0, "total virtual devices the tree drives, split contiguously across the shard nodes (tree mode only)")
		actProb    = flag.Float64("activate-prob", 0, "per-device per-round activation probability (0 = deterministic selection via -fraction)")
		stateDir   = flag.String("state-dir", "", "durable job state directory: run the multi-job control plane (jobs submitted over -admin's /jobs API) instead of a single TCP round loop")
		maxJobs    = flag.Int("max-jobs", 8, "live jobs admitted before POST /jobs returns 429 (with -state-dir)")
		slots      = flag.Int("slots", 1, "jobs training a round concurrently (with -state-dir)")
		jobLease   = flag.String("job", "", "lease this coordinator to one job ID; workers must present the same lease in their Hello")
		jobEpoch   = flag.Int64("lease-epoch", 0, "lease epoch handed out with -job; a worker presenting a stale epoch is rejected and told the current lease")
		telRounds  = flag.Int("telemetry-rounds", 512, "per-job telemetry ring size in rounds (with -state-dir; 0 disables convergence telemetry)")
		dash       = flag.Bool("dash", true, "serve the live convergence dashboard at /dash on the admin endpoint (with -state-dir and telemetry on)")
		lossRising = flag.Int("alert-loss-rising", 3, "fire loss_rising after this many consecutive train-loss rises (negative = off)")
		gradEps    = flag.Float64("alert-grad-eps", 0, "grad_norm_stall floor ε: alert when ‖∇f‖² plateaus above it (0 = off)")
		gradStall  = flag.Int("alert-grad-stall", 5, "rounds of ‖∇f‖² plateau above -alert-grad-eps before grad_norm_stall fires")
		stragRatio = flag.Float64("alert-straggler-ratio", 0, "fire straggler_ratio when this share of the cohort is cut as stragglers (0 = off)")
	)
	flag.Parse()
	if *stateDir != "" {
		var hub *telemetry.Hub
		if *telRounds > 0 {
			hub = telemetry.NewHub(telemetry.Options{
				Rounds:     *telRounds,
				StaleAfter: *staleAft,
				Rules: telemetry.RuleConfig{
					LossRisingK:    *lossRising,
					GradStallEps:   *gradEps,
					GradStallK:     *gradStall,
					StragglerRatio: *stragRatio,
				},
			})
		}
		runJobsMode(*stateDir, *admin, *maxJobs, *slots, hub, *dash)
		return
	}
	codec, err := transport.ParseCodec(*codecStr)
	if err != nil {
		fatal(err)
	}
	// Inverted comparisons so NaN is rejected too.
	if !(*fraction > 0 && *fraction <= 1) {
		fatal(fmt.Errorf("-fraction must be in (0,1], got %v", *fraction))
	}
	// Checked again by SetTopKFrac, but fail here before blocking on worker
	// connections.
	if !(*topkFrac > 0 && *topkFrac <= 1) {
		fatal(fmt.Errorf("-topk-frac must be in (0,1], got %v", *topkFrac))
	}
	if !(*actProb >= 0 && *actProb <= 1) {
		fatal(fmt.Errorf("-activate-prob must be in [0,1], got %v", *actProb))
	}

	// In tree mode the data is partitioned over the VIRTUAL device cohort;
	// each fedclient shard node regenerates its contiguous slice of it.
	nDev := *devices
	if *fanout > 0 {
		if *virtDev < *fanout {
			fatal(fmt.Errorf("-virtual-devices (%d) must be >= -tree-fanout (%d)", *virtDev, *fanout))
		}
		nDev = *virtDev
	} else if *virtDev > 0 {
		fatal(fmt.Errorf("-virtual-devices needs -tree-fanout"))
	}

	task, err := clisetup.Task(*dataset, "softmax", nDev, *samples, 1, *seed)
	if err != nil {
		fatal(err)
	}
	cfg, err := clisetup.Config(*alg, *beta, task.L, *mu, *tau, *batch, *rounds)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.Test = task.Test
	cfg.ClientFraction = *fraction
	cfg.DropoutProb = *dropout
	cfg.RoundDeadline = *deadline
	cfg.MinReport = *minRep
	cfg.ActivateProb = *actProb

	var coord *transport.Coordinator
	switch {
	case *jobLease != "":
		if *fanout > 0 {
			fatal(fmt.Errorf("-job leases drive flat workers; drop -tree-fanout"))
		}
		fmt.Printf("fedserver: waiting for %d workers on %s (lease %s@%d) …\n", *devices, *addr, *jobLease, *jobEpoch)
		var ln net.Listener
		if ln, err = net.Listen("tcp", *addr); err == nil {
			coord, err = transport.NewLeasedCoordinatorOn(ln, *devices, *timeout, *jobLease, *jobEpoch)
		}
	case *fanout > 0:
		fmt.Printf("fedserver: waiting for %d tree shard nodes on %s (%d virtual devices) …\n", *fanout, *addr, *virtDev)
		coord, err = transport.NewTreeCoordinator(*addr, *fanout, *timeout)
	default:
		fmt.Printf("fedserver: waiting for %d workers on %s …\n", *devices, *addr)
		coord, err = transport.NewCoordinator(*addr, *devices, *timeout)
	}
	if err != nil {
		fatal(err)
	}
	defer coord.Close()
	coord.SetCodec(codec)
	if err := coord.SetTopKFrac(*topkFrac); err != nil {
		fatal(err)
	}
	if *fanout > 0 {
		fmt.Printf("fedserver: all %d shard nodes connected (%d virtual devices), wire codec %v\n", *fanout, coord.VirtualDevices(), codec)
	} else {
		fmt.Printf("fedserver: all workers connected (weights %v), wire codec %v\n", coord.Weights(), codec)
	}
	coord.SetFaultPolicy(transport.FaultPolicy{
		MaxRetries:      *retries,
		RetryBackoff:    *backoff,
		MinParticipants: *quorum,
		MaxFailedRounds: *maxSkip,
	})
	coord.SetFaultHandler(func(id int, err error) {
		fmt.Fprintf(os.Stderr, "fedserver: worker %d dropped from the round: %v (it may rejoin between rounds)\n", id, err)
	})

	w0 := make([]float64, task.Model.Dim())
	if task.InitW != nil {
		copy(w0, task.InitW)
	}
	var eng *engine.Engine
	if *fanout > 0 {
		eng, err = coord.TreeEngine(w0, cfg, task.Model)
	} else {
		eng, err = coord.Engine(w0, cfg, task.Model, task.Part.Clients)
	}
	if err != nil {
		fatal(err)
	}

	// Observability: -admin and/or -trace enable per-round collection. The
	// in-process registry backs /metrics regardless of whether the run has
	// started; the summary table prints after the run.
	var summary *obs.Summary
	var collector *obs.Collector
	if *admin != "" || *tracePth != "" {
		reg := &obs.Registry{}
		summary = &obs.Summary{}
		sinks := []obs.Sink{reg, summary}
		if *tracePth != "" {
			f, err := os.Create(*tracePth)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sinks = append(sinks, obs.NewJSONL(f))
		}
		collector = obs.NewCollector(sinks...)
		eng.SetStats(collector)
		if *admin != "" {
			mux := obs.NewAdminMux(reg, obs.AdminOptions{StaleAfter: *staleAft})
			go func() {
				if err := http.ListenAndServe(*admin, mux); err != nil {
					fmt.Fprintf(os.Stderr, "fedserver: admin endpoint: %v\n", err)
				}
			}()
			fmt.Printf("fedserver: admin endpoint on http://%s (/metrics, /healthz, /buildz, /debug/pprof/)\n", *admin)
		}
	}

	// Span tracing: the engine forwards the tracer to the TCP executor, which
	// propagates the trace context in round requests; workers that ran with
	// -trace-spans ship their solve spans back for one multi-process timeline.
	var tracer *trace.Tracer
	if *spansPth != "" || *spanLog != "" {
		tracer = trace.New("fedserver")
		eng.SetTracer(tracer)
	}

	eng.OnRound(func(info engine.RoundInfo) error {
		if info.Failed > 0 || info.Stragglers > 0 {
			fmt.Fprintf(os.Stderr, "fedserver: round %d: %d/%d workers reported (%d failed, %d cut as stragglers)\n",
				info.Round, len(info.Participants),
				len(info.Participants)+info.Failed+info.Stragglers,
				info.Failed, info.Stragglers)
		}
		return nil
	})
	// Graceful shutdown: SIGTERM/SIGINT cancels the run at the next round
	// boundary (the engine checks ctx between rounds — an in-flight round
	// finishes or is abandoned by its own deadline policy), sinks are
	// flushed, and the process exits 0.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopSignals()
	start := time.Now()
	series, err := eng.Run(ctx)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	coord.Shutdown()
	if collector != nil {
		if err := collector.Close(); err != nil {
			fatal(err)
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "fedserver: interrupted — stopped at a round boundary, sinks flushed")
	}
	if tracer != nil {
		if err := exportTrace(tracer, *spansPth, *spanLog); err != nil {
			fatal(err)
		}
	}
	if err := series.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
	last, _ := series.Last()
	unit := "participants"
	if *fanout > 0 {
		// The engine's cohort is the shard nodes; device-level totals are in
		// the per-round stats (-trace / -admin).
		unit = "shards reported"
	}
	fmt.Fprintf(os.Stderr, "fedserver: %d rounds in %s, final loss %.4f, acc %.2f%%, %d %s last round, %d failures total\n",
		*rounds, time.Since(start).Round(time.Millisecond), last.TrainLoss, last.TestAcc*100,
		last.Participants, unit, series.TotalFailed())
	if summary != nil {
		sent, recv := coord.Bandwidth()
		fmt.Fprintf(os.Stderr, "fedserver: %d bytes sent, %d received over the run (codec %v)\n", sent, recv, codec)
		fmt.Fprintln(os.Stderr)
		if err := summary.WriteTable(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// runJobsMode runs the multi-job control plane: a crash-recovering job
// manager over -state-dir, with the job API and per-job metrics served on
// the admin endpoint. SIGTERM/SIGINT stops gracefully — in-flight rounds
// finish, checkpoints are fsynced, running jobs yield back to PENDING — and
// the process exits 0; a later incarnation (epoch bumped) resumes every
// non-terminal job at its last completed round, bit-identical.
func runJobsMode(stateDir, adminAddr string, maxJobs, slots int, hub *telemetry.Hub, dash bool) {
	if adminAddr == "" {
		fatal(fmt.Errorf("-state-dir needs -admin (the /jobs API is served on the admin endpoint)"))
	}
	m, err := jobs.Open(jobs.Options{Dir: stateDir, MaxJobs: maxJobs, Slots: slots, Telemetry: hub})
	if err != nil {
		fatal(err)
	}
	jobsAPI := m.Handler()
	extra := []obs.MetricsWriter{m, obs.RuntimeWriter{}}
	mounts := map[string]http.Handler{"/jobs": jobsAPI, "/jobs/": jobsAPI}
	endpoints := "/jobs, /metrics"
	if hub != nil {
		extra = append(extra, hub)
		telAPI := hub.Handler()
		mounts["/api/v1/"] = telAPI
		endpoints += ", /api/v1/jobs"
		if dash {
			mounts["/dash"] = telAPI
			mounts["/dash/"] = telAPI
			endpoints += ", /dash"
		}
	}
	adm := obs.NewAdmin(&obs.Registry{}, obs.AdminOptions{
		Extra:  extra,
		Mounts: mounts,
	})
	ln, err := net.Listen("tcp", adminAddr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: adm}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "fedserver: admin endpoint: %v\n", err)
		}
	}()
	fmt.Printf("fedserver: control plane epoch %d over %s — %d recovered job(s), admin http://%s (%s)\n",
		m.Epoch(), m.Dir(), len(m.List()), ln.Addr(), endpoints)

	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopSignals()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "fedserver: shutting down — finishing in-flight rounds, flushing job state …")
	m.Stop()
	srv.Close()
	fmt.Fprintln(os.Stderr, "fedserver: job state flushed; non-terminal jobs will resume on the next start")
}

// exportTrace writes the collected spans in the requested formats.
func exportTrace(tr *trace.Tracer, chromePath, jsonlPath string) error {
	write := func(path string, export func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(chromePath, func(f *os.File) error { return tr.WriteChrome(f) }); err != nil {
		return err
	}
	return write(jsonlPath, func(f *os.File) error { return tr.WriteJSONL(f) })
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedserver:", err)
	os.Exit(1)
}
