// Command paper regenerates the paper's evaluation artifacts — every
// figure and table — writing series CSVs to -outdir and printing summary
// tables.
//
// Examples:
//
//	paper -exp all -scale quick -outdir results/
//	paper -exp fig2 -scale paper -outdir results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	fedproxvr "fedproxvr"
	"fedproxvr/internal/metrics"
	"fedproxvr/internal/plot"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "fig1 | fig2 | fig3 | fig4 | table1 | table2 | timing | straggler | all")
		scale  = flag.String("scale", "quick", "quick | paper")
		outdir = flag.String("outdir", "results", "directory for CSV outputs")
	)
	flag.Parse()

	var sc fedproxvr.Scale
	switch *scale {
	case "quick":
		sc = fedproxvr.QuickScale()
	case "paper":
		sc = fedproxvr.PaperScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}

	runs := map[string]func(fedproxvr.Scale, string) error{
		"fig1":      runFig1,
		"fig2":      runFig2,
		"fig3":      runFig3,
		"fig4":      runFig4,
		"table1":    runTable1,
		"table2":    runTable2,
		"timing":    runTiming,
		"straggler": runStraggler,
	}
	order := []string{"fig1", "fig2", "fig3", "fig4", "table1", "table2", "timing", "straggler"}
	selected := order
	if *exp != "all" {
		if _, ok := runs[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		selected = []string{*exp}
	}
	for _, name := range selected {
		start := time.Now()
		fmt.Printf("== %s (scale=%s) ==\n", name, *scale)
		if err := runs[name](sc, *outdir); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("-- %s done in %s\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func runFig1(sc fedproxvr.Scale, outdir string) error {
	sigma2s, gammas := fedproxvr.Fig1Defaults()
	rows := fedproxvr.RunFig1(sigma2s, gammas)
	f, err := os.Create(filepath.Join(outdir, "fig1.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "sigma2,gamma,beta,mu,theta,tau,fed_factor,objective")
	var tbl [][]string
	for _, r := range rows {
		fmt.Fprintf(f, "%g,%g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
			r.SigmaBar2, r.Gamma, r.Beta, r.Mu, r.Theta, r.Tau, r.Fed, r.Objective)
		tbl = append(tbl, []string{
			fmt.Sprintf("%g", r.SigmaBar2), fmt.Sprintf("%.3g", r.Gamma),
			fmt.Sprintf("%.4g", r.Beta), fmt.Sprintf("%.4g", r.Mu),
			fmt.Sprintf("%.4g", r.Theta), fmt.Sprintf("%.0f", r.Tau),
			fmt.Sprintf("%.4g", r.Fed),
		})
	}
	if err := metrics.Table(os.Stdout, []string{"σ̄²", "γ", "β*", "μ*", "θ", "τ", "Θ"}, tbl); err != nil {
		return err
	}
	return writeFig1SVG(outdir, rows)
}

// writeFig1SVG renders the four panels of Figure 1 (β*, μ*, θ, Θ vs γ)
// with one line per σ̄² level.
func writeFig1SVG(outdir string, rows []fedproxvr.Fig1Row) error {
	panels := []struct {
		name  string
		value func(fedproxvr.Fig1Row) float64
	}{
		{"beta", func(r fedproxvr.Fig1Row) float64 { return r.Beta }},
		{"mu", func(r fedproxvr.Fig1Row) float64 { return r.Mu }},
		{"theta", func(r fedproxvr.Fig1Row) float64 { return r.Theta }},
		{"fed_factor", func(r fedproxvr.Fig1Row) float64 { return r.Fed }},
	}
	for _, panel := range panels {
		chart := &plot.Chart{
			Title:  "Fig 1: optimal " + panel.name + " vs gamma",
			XLabel: "gamma = d_cmp/d_com",
			YLabel: panel.name,
			LogX:   true,
		}
		lines := map[float64]*plot.Line{}
		var order []float64
		for _, r := range rows {
			l, ok := lines[r.SigmaBar2]
			if !ok {
				l = &plot.Line{Name: fmt.Sprintf("sigma2=%g", r.SigmaBar2)}
				lines[r.SigmaBar2] = l
				order = append(order, r.SigmaBar2)
			}
			l.X = append(l.X, r.Gamma)
			l.Y = append(l.Y, panel.value(r))
		}
		for _, s2 := range order {
			chart.Lines = append(chart.Lines, *lines[s2])
		}
		f, err := os.Create(filepath.Join(outdir, "fig1_"+panel.name+".svg"))
		if err != nil {
			return err
		}
		if err := chart.RenderSVG(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return nil
}

// writeSeriesSVG renders loss (and accuracy, when present) charts for a
// figure's series.
func writeSeriesSVG(outdir, base, title string, series []*fedproxvr.Series) error {
	lossChart := &plot.Chart{Title: title + " — training loss", XLabel: "global round", YLabel: "loss"}
	accChart := &plot.Chart{Title: title + " — test accuracy", XLabel: "global round", YLabel: "accuracy"}
	hasAcc := false
	for _, s := range series {
		rounds := make([]int, len(s.Points))
		for i, p := range s.Points {
			rounds[i] = p.Round
		}
		lossChart.Lines = append(lossChart.Lines, plot.FromSeries(s.Name, rounds, s.Losses()))
		accs := s.Accuracies()
		for _, a := range accs {
			if a == a { // not NaN
				hasAcc = true
				break
			}
		}
		accChart.Lines = append(accChart.Lines, plot.FromSeries(s.Name, rounds, accs))
	}
	f, err := os.Create(filepath.Join(outdir, base+"_loss.svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := lossChart.RenderSVG(f); err != nil {
		return err
	}
	if !hasAcc {
		return nil
	}
	g, err := os.Create(filepath.Join(outdir, base+"_acc.svg"))
	if err != nil {
		return err
	}
	defer g.Close()
	return accChart.RenderSVG(g)
}

func writeSeriesCSV(outdir, file string, series []*fedproxvr.Series) error {
	f, err := os.Create(filepath.Join(outdir, file))
	if err != nil {
		return err
	}
	defer f.Close()
	for _, s := range series {
		if err := s.WriteCSV(f); err != nil {
			return err
		}
	}
	return nil
}

func summarize(series []*fedproxvr.Series) {
	for _, s := range series {
		last, _ := s.Last()
		best, _ := s.BestAcc()
		fmt.Printf("%-55s loss %.4f → %.4f | best acc %.2f%% | %s\n",
			s.Name, s.Points[0].TrainLoss, last.TrainLoss, best*100,
			metrics.Sparkline(s.Losses(), 30))
	}
}

func runFig2(sc fedproxvr.Scale, outdir string) error {
	results, err := fedproxvr.RunFig2(sc)
	if err != nil {
		return err
	}
	series := make([]*fedproxvr.Series, len(results))
	for i, r := range results {
		series[i] = r.Series
	}
	summarize(series)
	if err := writeSeriesSVG(outdir, "fig2", "Fig 2: convex task (Fashion images)", series); err != nil {
		return err
	}
	return writeSeriesCSV(outdir, "fig2.csv", series)
}

func runFig3(sc fedproxvr.Scale, outdir string) error {
	results, err := fedproxvr.RunFig3(sc)
	if err != nil {
		return err
	}
	series := make([]*fedproxvr.Series, len(results))
	for i, r := range results {
		series[i] = r.Series
	}
	summarize(series)
	if err := writeSeriesSVG(outdir, "fig3", "Fig 3: non-convex CNN (digit images)", series); err != nil {
		return err
	}
	return writeSeriesCSV(outdir, "fig3.csv", series)
}

func runFig4(sc fedproxvr.Scale, outdir string) error {
	series, err := fedproxvr.RunFig4(sc)
	if err != nil {
		return err
	}
	summarize(series)
	if err := writeSeriesSVG(outdir, "fig4", "Fig 4: effect of proximal penalty mu (Synthetic)", series); err != nil {
		return err
	}
	return writeSeriesCSV(outdir, "fig4.csv", series)
}

func runTable(sc fedproxvr.Scale, outdir, file string,
	run func(fedproxvr.Scale) ([]fedproxvr.TableResult, error)) error {
	results, err := run(sc)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, fedproxvr.TableRow(r.Best))
	}
	if err := metrics.Table(os.Stdout, fedproxvr.TableHeaders(), rows); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, file))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, strings.Join(fedproxvr.TableHeaders(), ","))
	for _, r := range results {
		fmt.Fprintln(f, strings.Join(fedproxvr.TableRow(r.Best), ","))
	}
	return nil
}

func runTiming(sc fedproxvr.Scale, outdir string) error {
	rows, err := fedproxvr.RunTimingStudy(sc)
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, "timing.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "fleet,gamma,tau,rounds,time_to_target_s")
	var tbl [][]string
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%g,%d,%d,%.4f\n", r.Fleet, r.Gamma, r.Tau, r.Rounds, r.TimeToTarget)
		tbl = append(tbl, []string{
			r.Fleet, fmt.Sprintf("%.3g", r.Gamma), fmt.Sprintf("%d", r.Tau),
			fmt.Sprintf("%d", r.Rounds), fmt.Sprintf("%.2fs", r.TimeToTarget),
		})
	}
	return metrics.Table(os.Stdout, []string{"fleet", "γ", "τ", "rounds", "time-to-target"}, tbl)
}

func runStraggler(sc fedproxvr.Scale, outdir string) error {
	rows, err := fedproxvr.RunStragglerStudy(sc)
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, "straggler.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "runtime,spread,time_to_target_s")
	var tbl [][]string
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%g,%.4f\n", r.Runtime, r.Spread, r.TimeToTarget)
		tbl = append(tbl, []string{
			r.Runtime, fmt.Sprintf("%g", r.Spread), fmt.Sprintf("%.2fs", r.TimeToTarget),
		})
	}
	return metrics.Table(os.Stdout, []string{"runtime", "spread", "time-to-target"}, tbl)
}

func runTable1(sc fedproxvr.Scale, outdir string) error {
	return runTable(sc, outdir, "table1.csv", fedproxvr.RunTable1)
}

func runTable2(sc fedproxvr.Scale, outdir string) error {
	return runTable(sc, outdir, "table2.csv", fedproxvr.RunTable2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
